"""Data dependence graph construction (step 1 of Figure 3).

The DDG spans every op of the region — all paths at once.  Because the
region is a tree, dependences only exist *along* root-to-leaf paths; ops in
sibling subtrees are independent by construction (cross-path register
conflicts were removed by renaming before this runs).  One depth-first walk
down the tree therefore builds all edges, carrying per-path state:

* **flow** (RAW) edges with the producer's latency, including guard
  predicate reads;
* **anti** (WAR) edges at latency 0 (a MultiOp reads before it writes) and
  **output** (WAW) edges spaced so the later def's write lands last;
* **memory** edges under the paper's no-aliasing rule — loads never bypass
  stores — with the Playdoh concession that "a store and any dependent
  memory operation can be scheduled in the same cycle" (store→load latency
  0; store→store and load→store are spaced a full cycle); calls fence
  everything;
* **exit** edges: a region exit may not retire before the ops on its
  root-to-source path *that the exit actually needs* have issued: every
  side-effecting op (stores, calls — they must happen before control
  leaves) and every op defining a value that is live into the exit.  Ops
  whose results are dead at the exit may issue later — they only matter
  to deeper or sibling paths, and anything they transitively feed is
  ordered behind them by its own dependence edges.  Edge latency is 0:
  issuing *in* the exit cycle is allowed, as ``r6 = 5`` does in the
  paper's Figure 5.

Op indices are assigned in tree preorder, so every edge points from a lower
to a higher index and the graph is a DAG by construction; heights are
computed in one reverse sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.cfg import BasicBlock
from repro.ir.liveness import LivenessInfo
from repro.ir.registers import Register
from repro.ir.types import Opcode
from repro.machine.model import MachineModel
from repro.obs.metrics import NULL_METRICS, current_metrics
from repro.regions.region import RegionExit
from repro.schedule.prep import ScheduleProblem
from repro.schedule.renaming import ExitCopy
from repro.schedule.schedule import SchedOp


class DDG:
    """Dependence edges + heights over a :class:`ScheduleProblem`.

    Two edge populations share the graph:

    * **placement edges** (``preds``/``succs``) constrain the list
      scheduler: flow, anti, output, memory, and exit requirements;
    * **height-only control edges** (``control_succs``) reproduce the
      control dependences of the paper's DDG: every op below a branch is
      control-dependent on it.  Speculation means the scheduler is free
      to *break* these at placement time (they never constrain placement
      here), but dependence heights are computed over both populations —
      which is what makes branches and compare chains tall and therefore
      urgent under the dependence-height heuristic, exactly as in the
      paper's Figure 5 schedule where the CMPPs and branches issue as
      early as their data allows.
    """

    def __init__(self, problem: ScheduleProblem):
        self.problem = problem
        n = len(problem.sched_ops)
        self.preds: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        self.succs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        self.control_succs: List[List[int]] = [[] for _ in range(n)]
        self.control_preds: List[List[int]] = [[] for _ in range(n)]
        #: producers[i][reg] = index of the SchedOp whose def of ``reg``
        #: op ``i`` reads (register flow only); used by dominator
        #: parallelism to prove two duplicates read identical values.
        self.producers: List[Dict[Register, int]] = [{} for _ in range(n)]
        #: For loads: index of the last store/call on the op's path (None
        #: when memory is untouched above it).  Dominator parallelism may
        #: only merge two duplicated loads when these match — otherwise
        #: they observe different memory states.
        self.mem_producers: List[Optional[int]] = [None] * n
        self.heights: List[int] = [0] * n
        self._edge_set = set()

    # ------------------------------------------------------------------

    def add_edge(self, src: int, dst: int, latency: int) -> None:
        if src == dst:
            return
        key = (src, dst, latency)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self.succs[src].append((dst, latency))
        self.preds[dst].append((src, latency))

    def add_control_edge(self, src: int, dst: int) -> None:
        """A breakable (height-only) control dependence at latency 1."""
        if src != dst:
            self.control_succs[src].append(dst)
            self.control_preds[dst].append(src)

    def compute_heights(self, machine: MachineModel) -> None:
        """Longest path to any sink over placement + control edges.

        Computed in reverse topological (Kahn) order so late insertions —
        the scheduled-copies ablation adds COPY ops that *precede* the
        exit branches created before them — are handled regardless of
        index order.
        """
        n = len(self.problem.sched_ops)
        if n != len(self.heights):
            # Ops were appended after construction (copy insertion).
            grow = n - len(self.heights)
            self.heights.extend([0] * grow)
        ops = self.problem.sched_ops
        unresolved = [
            len(self.succs[i]) + len(self.control_succs[i]) for i in range(n)
        ]
        ready = [i for i in range(n) if unresolved[i] == 0]
        resolved = 0
        while ready:
            i = ready.pop()
            resolved += 1
            best = machine.latency(ops[i].op)
            for j, latency in self.succs[i]:
                candidate = latency + self.heights[j]
                if candidate > best:
                    best = candidate
            for j in self.control_succs[i]:
                candidate = 1 + self.heights[j]
                if candidate > best:
                    best = candidate
            self.heights[i] = best
            for j, _latency in self.preds[i]:
                unresolved[j] -= 1
                if unresolved[j] == 0:
                    ready.append(j)
            for j in self.control_preds[i]:
                unresolved[j] -= 1
                if unresolved[j] == 0:
                    ready.append(j)
        if resolved != n:
            raise AssertionError("DDG has a cycle; heights undefined")

    def pred_count(self, i: int) -> int:
        return len(self.preds[i])


class _PathState:
    """Per-path dependence state carried down the tree walk.

    Forking is copy-on-write: a fork shares the parent's maps and copies
    them only on the child's first write (:meth:`own`).  The old eager
    fork deep-copied every dict and list once *per tree child*, which is
    quadratic on bushy treegions (a 40-way switch fans a full path state
    out 40 times at every level).  Sequence-valued state (``uses_since``
    values, ``loads_since``, ``side_ops``) is stored as tuples, so shared
    references are immutable and "appending" simply rebinds a fresh tuple
    on one state without touching its siblings.
    """

    __slots__ = ("last_def", "uses_since", "last_store", "loads_since",
                 "side_ops", "_owned")

    def __init__(self):
        self.last_def: Dict[Register, int] = {}
        self.uses_since: Dict[Register, Tuple[int, ...]] = {}
        self.last_store: Optional[int] = None   # last ST or CALL
        self.loads_since: Tuple[int, ...] = ()
        self.side_ops: Tuple[int, ...] = ()     # stores/calls on the path
        self._owned = True

    def fork(self) -> "_PathState":
        child = _PathState.__new__(_PathState)
        child.last_def = self.last_def
        child.uses_since = self.uses_since
        child.last_store = self.last_store
        child.loads_since = self.loads_since
        child.side_ops = self.side_ops
        child._owned = False
        # The parent now shares its dicts with the child: it must copy
        # before writing too (only relevant if it keeps processing ops).
        self._owned = False
        return child

    def own(self) -> None:
        """Make the dict-valued state private before the first write.

        Shallow copies suffice — the values (op indices / index tuples)
        are immutable — and dict order is preserved, so edge insertion
        order is bit-identical to the eager-copy implementation.
        """
        if not self._owned:
            self.last_def = dict(self.last_def)
            self.uses_since = dict(self.uses_since)
            self._owned = True


def _live_at_exit(
    exit: RegionExit,
    liveness: Optional[LivenessInfo],
    copies: Optional[List[ExitCopy]],
) -> Tuple[Register, ...]:
    """Registers (post-renaming names) whose values the exit must carry,
    in sorted order (the DDG's deterministic edge-insertion order)."""
    if exit.edge is None or liveness is None:
        return ()
    repairs = [(original, renamed) for copy_exit, original, renamed
               in copies or [] if copy_exit is exit]
    if not repairs:
        # No renaming at this exit: reuse the liveness info's cached
        # sorted tuple (shared across regions and schemes via the
        # analysis cache) instead of re-sorting the same set.
        return liveness.live_into_edge_sorted(exit.edge)
    live = set(liveness.live_into_edge(exit.edge))
    for original, renamed in repairs:
        if original in live:
            live.discard(original)
            live.add(renamed)
    return tuple(sorted(live))


def build_ddg(
    problem: ScheduleProblem,
    machine: MachineModel,
    liveness: Optional[LivenessInfo] = None,
    copies: Optional[List[ExitCopy]] = None,
) -> DDG:
    """Build the region DDG (after renaming) and compute heights.

    ``liveness`` and the renaming ``copies`` pin down which values each
    exit must wait for; without them every exit conservatively waits for
    all path ops.
    """
    ddg = DDG(problem)
    region = problem.region
    live_cache: Dict[int, Tuple[Register, ...]] = {}
    if liveness is not None:
        for exit in problem.exits:
            live_cache[id(exit)] = _live_at_exit(exit, liveness, copies)

    stack: List[Tuple[BasicBlock, _PathState]] = [(region.root, _PathState())]
    while stack:
        block, state = stack.pop()
        for sop in problem.by_block[block.bid]:
            _add_op_edges(ddg, machine, sop, state,
                          live_cache if liveness is not None else None)
        children = region.children(block)
        # The first child (processed next, pushed last) adopts the parent
        # state outright — the parent is done with it — so linear chains
        # never copy path state at all; siblings fork copy-on-write.
        for child in reversed(children[1:]):
            stack.append((child, state.fork()))
        if children:
            stack.append((children[0], state))

    _add_control_height_edges(ddg)
    ddg.compute_heights(machine)
    metrics = current_metrics()
    if metrics is not NULL_METRICS:
        metrics.inc("ddg.nodes", len(problem.sched_ops))
        metrics.inc("ddg.edges", sum(len(p) for p in ddg.preds))
        metrics.inc("ddg.control_edges",
                    sum(len(s) for s in ddg.control_succs))
    return ddg


def _add_control_height_edges(ddg: DDG) -> None:
    """Height-only control dependences: branch-role ops (exit branches,
    returns, and the guard predicate ops standing in for internal
    branches) control everything homed strictly below their block."""
    problem = ddg.problem
    region = problem.region
    guard_opcodes = (Opcode.CMPP, Opcode.PAND, Opcode.PANDCN, Opcode.NINSET)

    subtree_ops: Dict[int, List[int]] = {}
    # Reverse preorder = children before parents.
    for block in reversed(list(_preorder(region))):
        own = [sop.index for sop in problem.by_block[block.bid]]
        below: List[int] = []
        for child in region.children(block):
            below.extend(subtree_ops[child.bid])
        subtree_ops[block.bid] = own + below
        if not below:
            continue
        for sop in problem.by_block[block.bid]:
            is_branch_role = sop.exit is not None or (
                sop.source is None and sop.op.opcode in guard_opcodes
            )
            if is_branch_role:
                for target in below:
                    ddg.add_control_edge(sop.index, target)


def _preorder(region) -> List[BasicBlock]:
    order: List[BasicBlock] = []
    stack = [region.root]
    while stack:
        block = stack.pop()
        order.append(block)
        stack.extend(reversed(region.children(block)))
    return order


def _add_op_edges(ddg: DDG, machine: MachineModel, sop: SchedOp,
                  state: _PathState,
                  live_cache: Optional[Dict[int, FrozenSet[Register]]]) -> None:
    i = sop.index
    op = sop.op
    ops = ddg.problem.sched_ops

    # Flow dependences (sources + guard).
    used = op.used_registers()
    if used:
        state.own()
        for reg in used:
            producer = state.last_def.get(reg)
            if producer is not None:
                ddg.add_edge(producer, i, machine.latency(ops[producer].op))
                ddg.producers[i][reg] = producer
            state.uses_since[reg] = state.uses_since.get(reg, ()) + (i,)

    # Output / anti dependences.
    defined = op.defined_registers()
    if defined:
        state.own()
        for reg in defined:
            previous = state.last_def.get(reg)
            if previous is not None:
                spacing = max(
                    1,
                    machine.latency(ops[previous].op) - machine.latency(op) + 1,
                )
                ddg.add_edge(previous, i, spacing)
            for user in state.uses_since.get(reg, ()):
                ddg.add_edge(user, i, 0)
            state.last_def[reg] = i
            state.uses_since[reg] = ()

    # Memory ordering (loads never bypass stores; Playdoh same-cycle rule).
    if op.opcode is Opcode.LD:
        ddg.mem_producers[i] = state.last_store
        if state.last_store is not None:
            producer = ops[state.last_store].op
            latency = 0 if producer.opcode is Opcode.ST else 1
            ddg.add_edge(state.last_store, i, latency)
        state.loads_since = state.loads_since + (i,)
    elif op.opcode is Opcode.ST or op.opcode is Opcode.CALL:
        if state.last_store is not None:
            ddg.add_edge(state.last_store, i, 1)
        for load in state.loads_since:
            ddg.add_edge(load, i, 1)
        state.last_store = i
        state.loads_since = ()

    # Track side-effecting ops; record exit requirements.
    if sop.exit is not None:
        # Side effects on the path must all have issued before leaving.
        for side_op in state.side_ops:
            ddg.add_edge(side_op, i, 0)
        if live_cache is None:
            # No liveness: conservatively wait for every path def.
            for producer in state.last_def.values():
                ddg.add_edge(producer, i, 0)
        else:
            # live_cache values are pre-sorted tuples.
            for reg in live_cache[id(sop.exit)]:
                producer = state.last_def.get(reg)
                if producer is not None:
                    ddg.add_edge(producer, i, 0)
    elif op.opcode is Opcode.ST or op.opcode is Opcode.CALL:
        state.side_ops = state.side_ops + (i,)
