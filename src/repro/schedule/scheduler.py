"""The region scheduler entry point: Figure 3's three steps plus the
supporting passes, glued together.

    scheduleTreegion (treegion) {
        Form DDG for treegion
        sortDDGNodesBy*** (DDG)
        listSchedule (DDG)
    }

``schedule_region`` works for any tree-shaped region, so the same code
schedules basic blocks, SLRs, superblocks, and treegions — only the region
former differs between the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.analysis_cache import liveness_of
from repro.ir.liveness import LivenessInfo
from repro.lint.collect import current_collector
from repro.machine.model import MachineModel
from repro.obs.metrics import NULL_METRICS, current_metrics
from repro.obs.tracer import NULL_TRACER
from repro.regions.region import Region, RegionPartition
from repro.schedule.ddg import build_ddg
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.prep import prepare_region
from repro.schedule.priorities import (
    GLOBAL_WEIGHT,
    Heuristic,
    all_priority_keys,
    priority_order,
)
from repro.schedule.renaming import rename_region
from repro.schedule.schedule import RegionSchedule
from repro.util.timing import NULL_TIMER, StageTimer


@dataclass(frozen=True)
class ScheduleOptions:
    """Knobs for one scheduling run.

    Attributes:
        heuristic: One of ``repro.schedule.priorities.HEURISTICS``.
        dominator_parallelism: Enable duplicate elimination at schedule
            time (Section 4); only has an effect on tail-duplicated code.
        schedule_copies: Materialize renaming repair copies as real
            (predicated) ops competing for slots.  The paper's accounting
            leaves them out ("Copy Ops added due to renaming were not
            used in computing speedup"); turning this on quantifies that
            choice.
        max_cycles: Safety bound on schedule length.
        certify: Run the static legality certifier (``repro.lint``
            schedule rules) on every tree-region schedule and raise
            :class:`~repro.util.errors.ScheduleCertificationError` on any
            error diagnostic.  The certifier also runs — without raising —
            whenever a :func:`repro.lint.collect.lint_scope` is active.
        backend: ``"heuristic"`` (the list scheduler, default) or
            ``"exact"`` (branch-and-bound search for a provably minimal
            schedule height, seeded from the best heuristic schedule;
            see :mod:`repro.exact`).  The exact backend requires
            ``dominator_parallelism=False`` and ``schedule_copies=False``
            and does not cover hyperblocks.
        exact_budget: Node budget for the exact backend's search (one
            bundle-extension step per node).  When exceeded the best
            heuristic schedule is returned unchanged and the result is
            flagged ``budget-exceeded`` instead of ``proven``.
    """

    heuristic: Heuristic = GLOBAL_WEIGHT
    dominator_parallelism: bool = False
    schedule_copies: bool = False
    max_cycles: int = 1_000_000
    certify: bool = False
    backend: str = "heuristic"
    exact_budget: int = 50_000


def _record_schedule_metrics(schedule: RegionSchedule) -> RegionSchedule:
    """Count one finished region schedule into the active registry."""
    metrics = current_metrics()
    if metrics is not NULL_METRICS:
        metrics.inc("schedule.regions")
        metrics.inc("schedule.cycles", schedule.length)
        metrics.inc("schedule.speculated", schedule.speculated_count)
        metrics.inc("schedule.merged", len(schedule.merged))
        metrics.inc("rename.exit_copies", len(schedule.copies))
        metrics.observe("schedule.length", schedule.length)
    return schedule


def schedule_region(
    region: Region,
    machine: MachineModel,
    options: Optional[ScheduleOptions] = None,
    liveness: Optional[LivenessInfo] = None,
    timer: StageTimer = NULL_TIMER,
    key_cache: Optional[Dict[Heuristic, List[Tuple]]] = None,
    tracer=NULL_TRACER,
) -> RegionSchedule:
    """Schedule one region for the given machine.

    ``liveness`` may be supplied to avoid recomputing it per region when
    scheduling a whole partition.  The input IR is never modified.

    ``timer`` records per-stage wall time (prep/renaming/ddg/list_schedule)
    and ``tracer`` records the same stages as nested spans; per-decision
    counters land in the active :func:`repro.obs.metrics.current_metrics`
    registry.
    ``key_cache`` shares priority keys across heuristic sweeps of the same
    region: on the first call it is filled with every heuristic's keys (the
    expensive ingredients — heights, exit counts — are computed once), and
    later calls with a different heuristic reuse them.  Valid because
    preparation is deterministic, so SchedOp indices line up run to run;
    only useful when ``schedule_copies`` is fixed across the sweep (it adds
    ops, changing the index space).
    """
    options = options or ScheduleOptions()
    if options.backend not in ("heuristic", "exact"):
        raise ValueError(
            f"unknown backend {options.backend!r}; "
            "expected 'heuristic' or 'exact'"
        )
    if options.backend == "exact" and (options.dominator_parallelism
                                       or options.schedule_copies):
        raise ValueError(
            "backend='exact' requires dominator_parallelism=False and "
            "schedule_copies=False (merging and materialized copies "
            "fall outside the search's legality model)"
        )
    if liveness is None:
        liveness = liveness_of(region.root.cfg)
    # Hyperblocks go through the if-conversion pipeline: full predication,
    # DAG dependences, no renaming, no speculation.
    from repro.regions.hyperblock import Hyperblock

    if isinstance(region, Hyperblock):
        if options.backend == "exact":
            raise ValueError(
                "the exact backend covers tree-pipeline regions only; "
                "hyperblocks schedule through a different pipeline"
            )
        from repro.schedule.hyperblock import schedule_hyperblock

        with timer.stage("list_schedule"), \
                tracer.span("list_schedule", region=region.root.bid,
                            kind="hyperblock"):
            return _record_schedule_metrics(schedule_hyperblock(
                region, machine, heuristic=options.heuristic,
                liveness=liveness, max_cycles=options.max_cycles,
            ))
    with tracer.span("schedule_region", region=region.root.bid,
                     blocks=len(region.blocks),
                     machine=machine.name,
                     heuristic=options.heuristic):
        with timer.stage("prep"), tracer.span("prep"):
            problem = prepare_region(region, machine, liveness)
        with timer.stage("renaming"), tracer.span("renaming"):
            copies = rename_region(problem, liveness)
            if options.schedule_copies:
                _insert_copy_ops(problem, copies)
        with timer.stage("ddg"), tracer.span("ddg"):
            ddg = build_ddg(problem, machine, liveness=liveness,
                            copies=copies)
            if key_cache is not None and not options.schedule_copies:
                if not key_cache:
                    key_cache.update(all_priority_keys(problem, ddg))
                keys = key_cache.get(options.heuristic)
            else:
                keys = None
        if options.backend == "exact":
            from repro.exact.backend import exact_schedule_problem

            with timer.stage("exact"), tracer.span("exact"):
                schedule, _info = exact_schedule_problem(
                    problem, ddg, key_cache or None, machine, options,
                    copies,
                )
                _record_schedule_metrics(schedule)
        else:
            with timer.stage("ddg"):
                order = priority_order(problem, ddg, options.heuristic,
                                       keys=keys)
            with timer.stage("list_schedule"), tracer.span("list_schedule"):
                schedule = _record_schedule_metrics(list_schedule(
                    problem,
                    ddg,
                    order,
                    machine,
                    dominator_parallelism=options.dominator_parallelism,
                    copies=copies,
                    max_cycles=options.max_cycles,
                ))
        if options.certify or current_collector() is not None:
            with timer.stage("certify"), tracer.span("certify"):
                _certify(problem, ddg, schedule, machine, liveness, options)
        return schedule


def _certify(problem, ddg, schedule, machine, liveness, options) -> None:
    """Run the schedule-legality rules over a freshly built schedule.

    Diagnostics flow into the active lint collector when one is open (the
    lint runner / validation oracle path); with ``options.certify`` the
    pipeline additionally fails fast on any error diagnostic.
    """
    from repro.lint.schedule_rules import check_schedule

    report = check_schedule(problem, ddg, schedule, machine=machine,
                            liveness=liveness)
    collector = current_collector()
    if collector is not None and report.diagnostics:
        collector.extend(report.diagnostics)
    if options.certify and not report.ok:
        from repro.util.errors import ScheduleCertificationError

        raise ScheduleCertificationError(report.errors)


def _insert_copy_ops(problem, copies) -> None:
    """Materialize exit repair copies as predicated COPY ops.

    Each copy (exit, original <- renamed) becomes a real op homed at the
    exit's source block, guarded by the exit's predicate so it only
    commits on that path, and placed before the exit branch in walk order
    — the exit's liveness edge then naturally orders the branch after it.
    """
    from repro.ir.operation import Operation
    from repro.ir.types import Opcode
    from repro.schedule.schedule import SchedOp

    for exit, original, renamed in copies:
        exit_sop = problem.exit_op_for(exit)
        branch = exit_sop.op
        if branch.opcode is Opcode.BRCT:
            guard = branch.srcs[0]
        else:  # BRU / RET exits inherit whatever guard they carry.
            guard = branch.guard
        copy_op = Operation(
            -(len(problem.sched_ops) + 1), Opcode.COPY,
            dests=[original], srcs=[renamed], guard=guard,
        )
        sop = SchedOp(len(problem.sched_ops), copy_op, exit.source,
                      source=None)
        problem.sched_ops.append(sop)
        block_list = problem.by_block[exit.source.bid]
        block_list.insert(block_list.index(exit_sop), sop)


def schedule_partition(
    partition: RegionPartition,
    machine: MachineModel,
    options: Optional[ScheduleOptions] = None,
    timer: StageTimer = NULL_TIMER,
    tracer=NULL_TRACER,
) -> List[RegionSchedule]:
    """Schedule every region of a partition (liveness cached per CFG)."""
    options = options or ScheduleOptions()
    schedules: List[RegionSchedule] = []
    for region in partition:
        liveness = liveness_of(region.root.cfg)
        schedules.append(
            schedule_region(region, machine, options, liveness, timer=timer,
                            tracer=tracer)
        )
    return schedules
