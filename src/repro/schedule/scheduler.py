"""The region scheduler entry point: Figure 3's three steps plus the
supporting passes, glued together.

    scheduleTreegion (treegion) {
        Form DDG for treegion
        sortDDGNodesBy*** (DDG)
        listSchedule (DDG)
    }

``schedule_region`` works for any tree-shaped region, so the same code
schedules basic blocks, SLRs, superblocks, and treegions — only the region
former differs between the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.machine.model import MachineModel
from repro.regions.region import Region, RegionPartition
from repro.schedule.ddg import build_ddg
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.prep import prepare_region
from repro.schedule.priorities import GLOBAL_WEIGHT, Heuristic, priority_order
from repro.schedule.renaming import rename_region
from repro.schedule.schedule import RegionSchedule


@dataclass(frozen=True)
class ScheduleOptions:
    """Knobs for one scheduling run.

    Attributes:
        heuristic: One of ``repro.schedule.priorities.HEURISTICS``.
        dominator_parallelism: Enable duplicate elimination at schedule
            time (Section 4); only has an effect on tail-duplicated code.
        schedule_copies: Materialize renaming repair copies as real
            (predicated) ops competing for slots.  The paper's accounting
            leaves them out ("Copy Ops added due to renaming were not
            used in computing speedup"); turning this on quantifies that
            choice.
        max_cycles: Safety bound on schedule length.
    """

    heuristic: Heuristic = GLOBAL_WEIGHT
    dominator_parallelism: bool = False
    schedule_copies: bool = False
    max_cycles: int = 1_000_000


def schedule_region(
    region: Region,
    machine: MachineModel,
    options: Optional[ScheduleOptions] = None,
    liveness: Optional[LivenessInfo] = None,
) -> RegionSchedule:
    """Schedule one region for the given machine.

    ``liveness`` may be supplied to avoid recomputing it per region when
    scheduling a whole partition.  The input IR is never modified.
    """
    options = options or ScheduleOptions()
    if liveness is None:
        liveness = compute_liveness(region.root.cfg)
    # Hyperblocks go through the if-conversion pipeline: full predication,
    # DAG dependences, no renaming, no speculation.
    from repro.regions.hyperblock import Hyperblock

    if isinstance(region, Hyperblock):
        from repro.schedule.hyperblock import schedule_hyperblock

        return schedule_hyperblock(
            region, machine, heuristic=options.heuristic,
            liveness=liveness, max_cycles=options.max_cycles,
        )
    problem = prepare_region(region, machine, liveness)
    copies = rename_region(problem, liveness)
    if options.schedule_copies:
        _insert_copy_ops(problem, copies)
    ddg = build_ddg(problem, machine, liveness=liveness, copies=copies)
    order = priority_order(problem, ddg, options.heuristic)
    return list_schedule(
        problem,
        ddg,
        order,
        machine,
        dominator_parallelism=options.dominator_parallelism,
        copies=copies,
        max_cycles=options.max_cycles,
    )


def _insert_copy_ops(problem, copies) -> None:
    """Materialize exit repair copies as predicated COPY ops.

    Each copy (exit, original <- renamed) becomes a real op homed at the
    exit's source block, guarded by the exit's predicate so it only
    commits on that path, and placed before the exit branch in walk order
    — the exit's liveness edge then naturally orders the branch after it.
    """
    from repro.ir.operation import Operation
    from repro.ir.types import Opcode
    from repro.schedule.schedule import SchedOp

    for exit, original, renamed in copies:
        exit_sop = problem.exit_op_for(exit)
        branch = exit_sop.op
        if branch.opcode is Opcode.BRCT:
            guard = branch.srcs[0]
        else:  # BRU / RET exits inherit whatever guard they carry.
            guard = branch.guard
        copy_op = Operation(
            -(len(problem.sched_ops) + 1), Opcode.COPY,
            dests=[original], srcs=[renamed], guard=guard,
        )
        sop = SchedOp(len(problem.sched_ops), copy_op, exit.source,
                      source=None)
        problem.sched_ops.append(sop)
        block_list = problem.by_block[exit.source.bid]
        block_list.insert(block_list.index(exit_sop), sop)


def schedule_partition(
    partition: RegionPartition,
    machine: MachineModel,
    options: Optional[ScheduleOptions] = None,
) -> List[RegionSchedule]:
    """Schedule every region of a partition (liveness computed once)."""
    options = options or ScheduleOptions()
    schedules: List[RegionSchedule] = []
    liveness_cache: Dict[int, LivenessInfo] = {}
    for region in partition:
        cfg = region.root.cfg
        key = id(cfg)
        if key not in liveness_cache:
            liveness_cache[key] = compute_liveness(cfg)
        schedules.append(
            schedule_region(region, machine, options, liveness_cache[key])
        )
    return schedules
