"""Hyperblock scheduling: full if-conversion (predication, no speculation).

The counterpart to the treegion pipeline for
:class:`~repro.regions.hyperblock.Hyperblock` regions, implementing the
comparison the paper plans in Section 6 ("the merits of predication versus
speculation for scheduling"):

* every op of a non-root block is **predicated** on its block guard and
  therefore cannot issue before the guard chain resolves — the exact
  opposite of the treegion scheduler, whose non-store ops speculate
  freely and repair conflicts by renaming;
* merge points stay inside the region; a join's guard is the ``POR`` of
  its incoming edge predicates;
* no renaming is needed: conflicting definitions on disjoint-guard paths
  are squashed by predication, and the DAG dependence walk gives a use at
  a join flow edges from *all* reaching definitions.

The pieces reused unchanged: the generic prep logic for edge predicates
and exit branches (subclassed), the priority heuristics (the
:class:`Hyperblock` region exposes DAG-reachability exit counts), and the
placement-order list scheduler.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.ir.cfg import BasicBlock, Edge
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.ir.types import Opcode
from repro.machine.model import MachineModel
from repro.regions.hyperblock import Hyperblock
from repro.schedule.ddg import DDG, _live_at_exit
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.prep import ScheduleProblem, _Prep
from repro.schedule.priorities import Heuristic, priority_order
from repro.schedule.schedule import RegionSchedule


class _HyperblockPrep(_Prep):
    """Prep with DAG visit order, OR-merged guards, and full predication."""

    def _visit_order(self) -> List[BasicBlock]:
        return self.region.topological_order()  # type: ignore[attr-defined]

    def _op_guard(self, op: Operation, guard, block):
        # Full if-conversion: everything executes under its block guard,
        # AND-combined with any guard the op already carried.
        if op.guard is not None:
            return self._merge_op_guard(op.guard, guard, block)
        return guard

    @property
    def _incoming(self) -> Dict[int, List]:
        return self.__dict__.setdefault("_incoming_preds", {})

    def _record_child_guard(self, edge: Edge) -> None:
        self._incoming.setdefault(edge.dst.bid, []).append(
            (edge, self._edge_predicate(edge))
        )

    def _prep_block(self, block: BasicBlock) -> None:
        if block is not self.region.root:
            self._resolve_guard(block)
        super()._prep_block(block)

    def _resolve_guard(self, block: BasicBlock) -> None:
        """Merge the incoming edge predicates into the block's guard."""
        arriving = self._incoming.get(block.bid, [])
        predicates = [pred for _edge, pred in arriving]
        if not predicates or any(pred is None for pred in predicates):
            # An unconditional/always-true way in: the block always runs.
            self.problem.guards[block.bid] = None
            return
        if len(predicates) == 1:
            self.problem.guards[block.bid] = predicates[0]
            return
        merged = self.problem.regs.fresh_pred()
        op = Operation(0, Opcode.POR, dests=[merged], srcs=list(predicates))
        self._emit_synth(op, block, merged)
        self.problem.guards[block.bid] = merged


def prepare_hyperblock(
    region: Hyperblock,
    machine: MachineModel,
    liveness: Optional[LivenessInfo] = None,
) -> ScheduleProblem:
    """Build the if-converted scheduling problem for a hyperblock."""
    return _HyperblockPrep(region, machine, liveness).run()


# ----------------------------------------------------------------------
# DAG dependence graph


class _DagState:
    """Dependence state at one program point of the DAG walk.

    Unlike the tree walk, definitions/uses/stores are *sets*: a join sees
    everything reaching it along any path, and a consumer depends on all
    of them (only the taken path's producer commits, but the schedule must
    order after every potential one).
    """

    __slots__ = ("defs", "uses", "stores", "loads", "sides")

    def __init__(self):
        self.defs: Dict[Register, FrozenSet[int]] = {}
        self.uses: Dict[Register, FrozenSet[int]] = {}
        self.stores: FrozenSet[int] = frozenset()
        self.loads: FrozenSet[int] = frozenset()
        self.sides: FrozenSet[int] = frozenset()

    @staticmethod
    def merge(states: List["_DagState"]) -> "_DagState":
        merged = _DagState()
        for state in states:
            for reg, defs in state.defs.items():
                merged.defs[reg] = merged.defs.get(reg, frozenset()) | defs
            for reg, uses in state.uses.items():
                merged.uses[reg] = merged.uses.get(reg, frozenset()) | uses
            merged.stores |= state.stores
            merged.loads |= state.loads
            merged.sides |= state.sides
        return merged

    def copy(self) -> "_DagState":
        clone = _DagState()
        clone.defs = dict(self.defs)
        clone.uses = dict(self.uses)
        clone.stores = self.stores
        clone.loads = self.loads
        clone.sides = self.sides
        return clone


def build_hyperblock_ddg(
    problem: ScheduleProblem,
    machine: MachineModel,
    liveness: Optional[LivenessInfo] = None,
) -> DDG:
    """DDG over an if-converted hyperblock (all-paths dependences)."""
    region: Hyperblock = problem.region  # type: ignore[assignment]
    ddg = DDG(problem)
    ops = problem.sched_ops

    live_cache: Dict[int, FrozenSet[Register]] = {}
    if liveness is not None:
        for exit in problem.exits:
            live_cache[id(exit)] = _live_at_exit(exit, liveness, None)

    out_states: Dict[int, _DagState] = {}
    for block in region.topological_order():
        preds = region.dag_preds(block)
        if preds:
            state = _DagState.merge([out_states[p.bid] for p in preds])
        else:
            state = _DagState()
        for sop in problem.by_block[block.bid]:
            _add_dag_edges(ddg, machine, sop, state,
                           live_cache if liveness is not None else None)
        out_states[block.bid] = state

    _add_dag_control_heights(ddg, region)
    ddg.compute_heights(machine)
    return ddg


def _add_dag_edges(ddg: DDG, machine: MachineModel, sop, state: _DagState,
                   live_cache) -> None:
    i = sop.index
    op = sop.op
    ops = ddg.problem.sched_ops

    for reg in op.used_registers():
        for producer in state.defs.get(reg, ()):
            ddg.add_edge(producer, i, machine.latency(ops[producer].op))
        state.uses[reg] = state.uses.get(reg, frozenset()) | {i}

    for reg in op.defined_registers():
        for previous in state.defs.get(reg, ()):
            spacing = max(
                1, machine.latency(ops[previous].op) - machine.latency(op) + 1
            )
            ddg.add_edge(previous, i, spacing)
        for user in state.uses.get(reg, ()):
            ddg.add_edge(user, i, 0)
        state.defs[reg] = frozenset({i})
        state.uses[reg] = frozenset()

    if op.opcode is Opcode.LD:
        for store in state.stores:
            latency = 0 if ops[store].op.opcode is Opcode.ST else 1
            ddg.add_edge(store, i, latency)
        state.loads |= {i}
    elif op.opcode is Opcode.ST or op.opcode is Opcode.CALL:
        for store in state.stores:
            ddg.add_edge(store, i, 1)
        for load in state.loads:
            ddg.add_edge(load, i, 1)
        state.stores = frozenset({i})
        state.loads = frozenset()
        state.sides |= {i}

    if sop.exit is not None:
        for side in state.sides:
            ddg.add_edge(side, i, 0)
        if live_cache is None:
            for defs in state.defs.values():
                for producer in defs:
                    ddg.add_edge(producer, i, 0)
        else:
            for reg in sorted(live_cache[id(sop.exit)]):
                for producer in state.defs.get(reg, ()):
                    ddg.add_edge(producer, i, 0)


def _add_dag_control_heights(ddg: DDG, region: Hyperblock) -> None:
    """Height-only control edges: branch-role ops control every op in
    blocks reachable below them (the DAG analogue of the tree version)."""
    problem = ddg.problem
    guard_opcodes = (Opcode.CMPP, Opcode.PAND, Opcode.PANDCN,
                     Opcode.NINSET, Opcode.POR)
    for block in region.blocks:
        below: List[int] = []
        for reached in region.reachable_from(block):
            if reached is block:
                continue
            below.extend(s.index for s in problem.by_block[reached.bid])
        if not below:
            continue
        for sop in problem.by_block[block.bid]:
            if sop.exit is not None or (
                sop.source is None and sop.op.opcode in guard_opcodes
            ):
                for target in below:
                    ddg.add_control_edge(sop.index, target)


# ----------------------------------------------------------------------


def schedule_hyperblock(
    region: Hyperblock,
    machine: MachineModel,
    heuristic: Heuristic = "global_weight",
    liveness: Optional[LivenessInfo] = None,
    max_cycles: int = 1_000_000,
) -> RegionSchedule:
    """The full hyperblock pipeline: if-convert, DDG, sort, list schedule."""
    if liveness is None:
        liveness = compute_liveness(region.root.cfg)
    problem = prepare_hyperblock(region, machine, liveness)
    ddg = build_hyperblock_ddg(problem, machine, liveness)
    order = priority_order(problem, ddg, heuristic)
    return list_schedule(problem, ddg, order, machine, copies=[],
                         max_cycles=max_cycles)
