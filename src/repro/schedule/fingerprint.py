"""Canonical content fingerprints for regions and machines.

Treegion scheduling is per-region and single-pass: the schedule a region
receives is a pure function of (region content, machine model, heuristic,
flags).  That makes per-region results memoizable the same way
content-addressed whole-program results already are in :mod:`repro.serve`
— provided the key captures *exactly* the inputs the pipeline reads.
This module computes that key: a SHA-256 digest of a canonical
serialization of everything prep, renaming, the DDG builder, and the
list scheduler can observe about a region.

**What is in the key** (see ``DESIGN.md`` for the derivation):

* the block tree: every member in ``region.blocks`` order (which fixes
  the tree shape, the children order, *and* the ``region.exits()``
  order) with its parent's position;
* the op stream of every block, opcodes/conditions/callees verbatim and
  operands renumbered: virtual registers get dense per-class
  first-appearance ids, branch-target labels get in-region positions or
  dense external ids, tail-duplication ``origin`` uids get dense
  equivalence-class ids (dominator parallelism groups merge candidates
  by origin);
* block and edge profile weights, quantized with the serve layer's
  ``%g`` convention (the same precision the textual IR round-trips);
* every out-edge of every member (kind, case value, weight, and whether
  it leaves the region — the exit structure);
* per exit edge, the registers live into the exit **restricted to
  registers appearing in the region's ops**, emitted in sorted original
  order as normalized ids.  Liveness reaches the scheduling pipeline
  only through these per-exit sets; registers that never appear in the
  region produce no edges, no renames, and no copies, so they are
  excluded — but the *relative sorted order* of the appearing ones is
  preserved, because renaming and the DDG iterate live sets in sorted
  order.

**What is not in the key**: op uids (identity bookkeeping), absolute
register indices and block ids (alpha-renamed regions hash equal), the
surrounding function (fresh registers minted during scheduling always
sort after every function register, whatever the function-wide bounds
are), and full-precision float weights beyond ``%g`` (the accepted
hazard shared with :func:`repro.serve.store.cell_key`, whose program
text also carries ``%g`` weights).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.ir.liveness import LivenessInfo
from repro.ir.registers import Register
from repro.machine.model import MachineModel
from repro.regions.region import Region

#: Revision of the fingerprint serialization.  Bump when the canonical
#: form changes; memoized entries then key differently and age out.
FINGERPRINT_FORMAT = 1

#: Attribute used to cache the digest on the region object, keyed by the
#: owning CFG's version so any structural edit invalidates it.
_CACHE_ATTR = "_content_fingerprint"


def machine_fingerprint(machine: MachineModel) -> str:
    """A stable textual fingerprint of everything that shapes schedules.

    This is the canonical definition; :mod:`repro.serve.store` re-exports
    it so cell keys and region keys agree on what "the same machine"
    means.
    """
    from repro.ir.types import Opcode

    latencies = ",".join(
        f"{opcode.value}={machine.latency_of(opcode)}"
        for opcode in sorted(Opcode, key=lambda o: o.value)
    )
    return (
        f"{machine.name}:w{machine.issue_width}:lat[{latencies}]"
        f":dl{machine.default_latency}:btr{int(machine.use_btr)}"
        f":mem{machine.max_memory_per_cycle}"
        f":br{machine.max_branches_per_cycle}"
    )


def latency_fingerprint(machine: MachineModel) -> str:
    """Fingerprint of only what shapes DDGs and priority keys.

    The DDG builder and the height/priority computations read the machine
    exclusively through ``machine.latency`` (issue width and per-cycle
    caps matter only to slot *placement*, which happens later in the list
    scheduler), and the prepared problem they run over depends on
    ``use_btr``.  Machines equal under this fingerprint — like the
    paper's 4U and 8U — can therefore share one DDG and one set of
    priority keys per region.
    """
    from repro.ir.types import Opcode

    latencies = ",".join(
        f"{opcode.value}={machine.latency_of(opcode)}"
        for opcode in sorted(Opcode, key=lambda o: o.value)
    )
    return (f"lat[{latencies}]:dl{machine.default_latency}"
            f":btr{int(machine.use_btr)}")


class _Canonicalizer:
    """First-appearance renumbering maps for one region serialization."""

    __slots__ = ("regs", "labels", "origins", "block_pos", "parts")

    def __init__(self, region: Region):
        #: Register -> dense per-class id ("r0", "p1", ...), assigned in
        #: op-stream appearance order.
        self.regs: Dict[Register, str] = {}
        #: External branch-target bid -> dense id ("x0", ...).
        self.labels: Dict[int, str] = {}
        #: Tail-duplication origin uid -> dense id ("o0", ...).
        self.origins: Dict[int, str] = {}
        #: Member bid -> position in region.blocks (in-region labels).
        self.block_pos: Dict[int, int] = {
            block.bid: position for position, block in enumerate(region.blocks)
        }
        self.parts: List[str] = []

    # -- operand renumbering -------------------------------------------

    def reg(self, register: Register) -> str:
        name = self.regs.get(register)
        if name is None:
            prefix = register.rclass.value
            count = sum(1 for r in self.regs if r.rclass is register.rclass)
            name = f"{prefix}{count}"
            self.regs[register] = name
        return name

    def label(self, bid: Optional[int]) -> str:
        if bid is None:
            return "-"
        position = self.block_pos.get(bid)
        if position is not None:
            return f"b{position}"
        name = self.labels.get(bid)
        if name is None:
            name = f"x{len(self.labels)}"
            self.labels[bid] = name
        return name

    def origin(self, uid: int) -> str:
        name = self.origins.get(uid)
        if name is None:
            name = f"o{len(self.origins)}"
            self.origins[uid] = name
        return name

    def operand(self, value) -> str:
        if isinstance(value, Register):
            return self.reg(value)
        # Immediate: repr distinguishes 1 from 1.0 exactly as the
        # interpreter and scheduler do.
        return f"#{value.value!r}"

    # -- op serialization ----------------------------------------------

    def op(self, operation) -> str:
        pieces = [
            operation.opcode.value,
            operation.cond.value if operation.cond is not None else "-",
            ",".join(self.reg(dest) for dest in operation.dests),
            ",".join(self.operand(src) for src in operation.srcs),
            self.reg(operation.guard) if operation.guard is not None else "-",
            self.label(operation.target),
            operation.callee if operation.callee is not None else "-",
            self.origin(operation.origin),
        ]
        return "|".join(pieces)


def region_fingerprint(region: Region,
                       liveness: Optional[LivenessInfo] = None) -> str:
    """SHA-256 hex digest of the region's canonical content.

    Two regions with equal fingerprints are scheduled bit-identically
    for any (machine, heuristic, flags): same cycle count, same per-exit
    retire cycles, same copy/merge/speculation counts, same pipeline
    counters.  ``liveness`` must be the CFG's liveness info whenever the
    caller schedules with liveness (the engine always does); passing
    None keys the conservative no-liveness pipeline instead.

    The digest is cached on the region keyed by ``cfg.version``, so
    repeated calls across the heuristic/machine sweep of a grid row are
    one dict probe.
    """
    cfg = region.root.cfg
    version = cfg.version if cfg is not None else -1
    cached = getattr(region, _CACHE_ATTR, None)
    if cached is not None and cached[0] == version:
        return cached[1]

    canon = _Canonicalizer(region)
    parts = canon.parts
    parts.append(f"region-fp-{FINGERPRINT_FORMAT}")
    parts.append(region.kind)

    appearing = set()
    for block in region.blocks:
        for op in block.ops:
            appearing.update(op.dests)
            for src in op.srcs:
                if isinstance(src, Register):
                    appearing.add(src)
            if op.guard is not None:
                appearing.add(op.guard)

    for position, block in enumerate(region.blocks):
        parent = region.parent(block)
        parts.append(
            f"B{position}"
            f":p{canon.block_pos[parent.bid] if parent is not None else -1}"
            f":w{block.weight:g}"
        )
        for op in block.ops:
            parts.append(canon.op(op))
        for edge in block.out_edges:
            in_region = edge.dst in region and edge.dst is not region.root
            case = edge.case_value if edge.case_value is not None else "-"
            parts.append(
                f"E:{edge.kind.value}:{case}:w{edge.weight:g}"
                f":{canon.label(edge.dst.bid)}"
                f":{'in' if in_region else 'exit'}"
            )
            if not in_region:
                if liveness is None:
                    live = "?"
                else:
                    live = ",".join(
                        canon.reg(register)
                        for register in liveness.live_into_edge_sorted(edge)
                        if register in appearing
                    )
                parts.append(f"L:{live}")

    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    try:
        setattr(region, _CACHE_ATTR, (version, fingerprint))
    except AttributeError:
        pass  # a slotted Region subclass: recompute per call
    return fingerprint
