"""Compile-time register renaming (Section 3).

"Because the DDG may contain instructions from separate paths, the list
scheduler may place instructions from multiple paths into the same cycle
[...] If they do conflict, compile-time register renaming is used.  [...]
Speculating an instruction above a branch may cause incorrect execution if
the instruction defines data that is used on another exit from the branch.
The treegion scheduler uses register renaming to prevent such live-out
violations."

A definition of ``r`` in a non-root block ``C`` is renamed when either

* some block *unrelated* to ``C`` in the region tree (neither ancestor nor
  descendant — i.e. on a divergent path) also defines or uses ``r``, or
* ``r`` is live into some region exit that does not lie in ``C``'s subtree
  (so a speculated ``C`` def could clobber the value that exit needs).

This reproduces the paper's examples exactly: ``r4``/``r5`` defined on both
arms of Figure 1 get per-path names (the shaded ``r4a``/``r5a`` of
Figure 5), while ``r6 = 5`` — dead on every foreign exit — keeps its name
and runs unconditionally.

Uses are rewritten along each tree path with a scoped map; at every exit
where a renamed value is live under its original name a **copy op** is
recorded.  Copies are bookkeeping, not schedule material — the paper states
"Copy Ops added due to renaming were not used in computing speedup" — but
the simulator applies them at region exits so execution stays correct, and
an ablation option can schedule them for real.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.cfg import BasicBlock
from repro.ir.liveness import LivenessInfo
from repro.ir.registers import Register
from repro.ir.types import Opcode, RegClass
from repro.obs.metrics import current_metrics
from repro.regions.region import RegionExit
from repro.schedule.prep import ScheduleProblem

#: Opcodes that still define their dests when squashed (the simulator
#: clears them to keep guard chains well-defined).  Every other guarded
#: op is a *partial* definition: on squash the previous value survives.
_DEFINES_WHEN_SQUASHED = frozenset({
    Opcode.CMPP, Opcode.NINSET, Opcode.PAND, Opcode.PANDCN, Opcode.POR,
})

#: (exit, original register, renamed register) — "copy original <- renamed
#: when leaving through this exit".
ExitCopy = Tuple[RegionExit, Register, Register]


class _ConflictAnalysis:
    """Which (register, defining block) pairs need fresh names."""

    def __init__(self, problem: ScheduleProblem, liveness: LivenessInfo):
        self.problem = problem
        self.region = problem.region
        self.liveness = liveness
        self.def_blocks: Dict[Register, Set[int]] = {}
        self.use_blocks: Dict[Register, Set[int]] = {}
        self._collect()

    def _collect(self) -> None:
        for sop in self.problem.sched_ops:
            bid = sop.home.bid
            for reg in sop.op.defined_registers():
                self.def_blocks.setdefault(reg, set()).add(bid)
            for reg in sop.op.used_registers():
                self.use_blocks.setdefault(reg, set()).add(bid)

    def _unrelated(self, a: BasicBlock, b: BasicBlock) -> bool:
        return not (self.region.dominates(a, b) or self.region.dominates(b, a))

    def needs_rename(self, reg: Register, block: BasicBlock) -> bool:
        """Should a def of ``reg`` in ``block`` get a fresh name?"""
        if block is self.region.root:
            return False
        if reg.rclass is RegClass.BTR:
            return False  # BTRs are minted fresh per branch already
        cfg = self.region.root.cfg
        touching = self.def_blocks.get(reg, set()) | self.use_blocks.get(reg, set())
        for bid in touching:
            other = cfg.block(bid)
            if other is not block and self._unrelated(block, other):
                return True
        subtree_ids = {b.bid for b in self.region.subtree(block)}
        for exit in self.problem.exits:
            if exit.source.bid in subtree_ids:
                continue
            if exit.edge is not None and reg in self.liveness.live_into_edge(exit.edge):
                return True
        return False


def rename_region(problem: ScheduleProblem, liveness: LivenessInfo) -> List[ExitCopy]:
    """Apply per-path renaming to the problem's SchedOps in place.

    Returns the exit copies required to restore original names when
    control leaves the region.
    """
    analysis = _ConflictAnalysis(problem, liveness)
    region = problem.region
    metrics = current_metrics()
    copies: List[ExitCopy] = []

    exits_by_block: Dict[int, List[RegionExit]] = {}
    for exit in problem.exits:
        exits_by_block.setdefault(exit.source.bid, []).append(exit)

    # DFS with a scoped rename map (original name -> current name).
    stack: List[Tuple[BasicBlock, Dict[Register, Register]]] = [
        (region.root, {})
    ]
    while stack:
        block, renames = stack.pop()
        for sop in problem.by_block[block.bid]:
            op = sop.op
            for i, src in enumerate(op.srcs):
                if isinstance(src, Register) and src in renames:
                    op.srcs[i] = renames[src]
            if op.guard is not None and op.guard in renames:
                op.guard = renames[op.guard]
            partial = (op.guard is not None
                       and op.opcode not in _DEFINES_WHEN_SQUASHED)
            for i, dest in enumerate(op.dests):
                if partial:
                    # A guarded op that squashes without writing is a
                    # partial def: minting a fresh name would leave it
                    # unwritten on squash and the exit copy would then
                    # publish garbage.  Update the currently active name
                    # instead — the guard already implies the block
                    # executes, so no foreign exit can observe the write.
                    current = renames.get(dest)
                    if current is not None:
                        op.dests[i] = current
                    continue
                if analysis.needs_rename(dest, block):
                    fresh = problem.regs.fresh(dest.rclass)
                    metrics.inc("rename.registers_minted")
                    renames[dest] = fresh
                    op.dests[i] = fresh
                else:
                    renames.pop(dest, None)

        for exit in exits_by_block.get(block.bid, []):
            if exit.edge is None:
                continue  # RET srcs were rewritten in place
            for reg in liveness.live_into_edge_sorted(exit.edge):
                current = renames.get(reg)
                if current is not None and current != reg:
                    copies.append((exit, reg, current))

        for child in reversed(region.children(block)):
            stack.append((child, dict(renames)))

    return copies
