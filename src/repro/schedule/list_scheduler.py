"""The list scheduler (step 3 of Figure 3) with dominator parallelism.

This is a *placement-order* list scheduler: ops are visited in heuristic
priority order (the sorted DDG node list of Figure 3) and each is placed at
the earliest cycle that satisfies its dependences and has a free slot.
High-priority ops get first pick of the slots; lower-priority ops fill the
holes left over.  This matches the paper's observed behaviour — under the
dependence-height heuristic, ops far down the treegion share early slots
with ops near the root instead of starving them outright, and "on a very
wide machine a large amount of speculation will occur due to abundant
processor resources".

Placement runs through a heap of *placeable* ops (all DDG predecessors
already placed), keyed by priority rank.  For tree-shaped regions the four
priority orders are almost topological over the DDG — along a path,
dependence height never increases and block weight / exit count never
increase either — so the heap nearly always pops ops in exact priority
order; the heap exists to stay correct when floating-point profile weights
break monotonicity by an ulp.

Dominator parallelism (Section 4) is folded in exactly where the paper puts
it — at schedule time: "if a tail duplicated Op A' is speculated into a
block where one of its duplicates A'' is already scheduled, A' can be
eliminated."  In the flattened predicated schedule an unguarded op executes
on every path through the region, so a duplicate about to be placed can be
merged into an already-placed sibling (same tail-duplication ``origin``)
whenever both clones still compute the same values — same opcode and
operands *and* the same DDG producers for every register source (per-path
renaming makes operand equality meaningful).  The merged op consumes no
slot; its consumers are rewired to read the survivor's destinations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.util.errors import SchedulingError
from repro.ir.registers import Register
from repro.machine.model import MachineModel
from repro.schedule.ddg import DDG
from repro.schedule.prep import ScheduleProblem
from repro.schedule.renaming import ExitCopy
from repro.schedule.schedule import ExitRecord, RegionSchedule, SchedOp


class _ResourceTable:
    """Per-cycle slot occupancy (issue width plus optional class caps)."""

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.used: List[int] = []
        self.memory: List[int] = []
        self.branches: List[int] = []

    def _grow(self, cycle: int) -> None:
        while len(self.used) < cycle:
            self.used.append(0)
            self.memory.append(0)
            self.branches.append(0)

    def fits(self, sop: SchedOp, cycle: int) -> bool:
        self._grow(cycle)
        i = cycle - 1
        if self.used[i] >= self.machine.issue_width:
            return False
        if (
            self.machine.max_memory_per_cycle is not None
            and sop.op.is_memory
            and self.memory[i] >= self.machine.max_memory_per_cycle
        ):
            return False
        if (
            self.machine.max_branches_per_cycle is not None
            and sop.op.is_branch
            and self.branches[i] >= self.machine.max_branches_per_cycle
        ):
            return False
        return True

    def take(self, sop: SchedOp, cycle: int) -> None:
        self._grow(cycle)
        i = cycle - 1
        self.used[i] += 1
        if sop.op.is_memory:
            self.memory[i] += 1
        if sop.op.is_branch:
            self.branches[i] += 1


def list_schedule(
    problem: ScheduleProblem,
    ddg: DDG,
    order: List[SchedOp],
    machine: MachineModel,
    dominator_parallelism: bool = False,
    copies: Optional[List[ExitCopy]] = None,
    max_cycles: int = 1_000_000,
) -> RegionSchedule:
    """Place every op of ``order`` (the heuristic-sorted DDG node list)."""
    import heapq

    schedule = RegionSchedule(problem.region)
    copies = copies if copies is not None else []
    resources = _ResourceTable(machine)
    merge_table: Dict[int, List[SchedOp]] = {}

    n = len(problem.sched_ops)
    ranks = [0] * n
    for position, sop in enumerate(order):
        ranks[sop.index] = position
    waiting = [len(ddg.preds[i]) for i in range(n)]
    ready = [(ranks[i], i) for i in range(n) if waiting[i] == 0]
    heapq.heapify(ready)

    placed = 0
    while ready:
        _rank, index = heapq.heappop(ready)
        sop = problem.sched_ops[index]
        earliest = 1
        for pred, latency in ddg.preds[index]:
            cycle = problem.sched_ops[pred].effective_cycle
            assert cycle is not None  # guaranteed by the readiness heap
            if cycle + latency > earliest:
                earliest = cycle + latency

        survivor = None
        if dominator_parallelism:
            survivor = _find_merge_target(problem, ddg, merge_table, sop)
        if survivor is not None:
            _merge(problem, ddg, schedule, copies, sop, survivor)
        else:
            cycle = earliest
            while not resources.fits(sop, cycle):
                cycle += 1
                if cycle > max_cycles:
                    raise SchedulingError(
                        f"schedule exceeded {max_cycles} cycles placing {sop!r}"
                    )
            resources.take(sop, cycle)
            schedule.place(sop, cycle)
            if (sop.source is not None and sop.op.guard is None
                    and sop.op.can_speculate):
                merge_table.setdefault(sop.source.origin, []).append(sop)

        placed += 1
        for succ, _latency in ddg.succs[index]:
            waiting[succ] -= 1
            if waiting[succ] == 0:
                heapq.heappush(ready, (ranks[succ], succ))

    if placed != n:
        raise SchedulingError(
            f"DDG has a cycle: only {placed}/{n} ops were placeable"
        )

    _record_exits(problem, schedule)
    _mark_speculation(problem, schedule)
    schedule.copies = list(copies)
    return schedule


# ----------------------------------------------------------------------
# Dominator parallelism

def _find_merge_target(
    problem: ScheduleProblem,
    ddg: DDG,
    merge_table: Dict[int, List[SchedOp]],
    sop: SchedOp,
) -> Optional[SchedOp]:
    """A scheduled duplicate that provably computes the same values."""
    if sop.source is None or sop.exit is not None:
        return None
    if sop.op.guard is not None or not sop.op.can_speculate:
        return None
    for candidate in merge_table.get(sop.source.origin, []):
        if candidate.home is sop.home:
            continue  # same block: that is CSE, not dominator parallelism
        if candidate.source is sop.source:
            continue
        if not candidate.op.same_computation(sop.op):
            continue
        if len(candidate.op.dests) != len(sop.op.dests):
            continue
        if not _same_producers(ddg, candidate, sop):
            continue
        return candidate
    return None


def _same_producers(ddg: DDG, a: SchedOp, b: SchedOp) -> bool:
    for src in b.op.srcs:
        if isinstance(src, Register):
            if ddg.producers[a.index].get(src) != ddg.producers[b.index].get(src):
                return False
    if a.op.is_load or b.op.is_load:
        # Loads only merge when they observe the same memory state.
        if ddg.mem_producers[a.index] != ddg.mem_producers[b.index]:
            return False
    return True


def _merge(
    problem: ScheduleProblem,
    ddg: DDG,
    schedule: RegionSchedule,
    copies: List[ExitCopy],
    sop: SchedOp,
    survivor: SchedOp,
) -> None:
    """Eliminate ``sop``; route its consumers to ``survivor``."""
    sop.merged_into = survivor
    schedule.merged.append(sop)
    replacements = dict(zip(sop.op.dests, survivor.op.dests))
    # Rewrite every (necessarily unplaced) consumer reading sop's dests.
    for succ, _latency in ddg.succs[sop.index]:
        consumer = problem.sched_ops[succ].op
        for old, new in replacements.items():
            if old != new:
                consumer.replace_uses(old, new)
    for position, (exit, original, renamed) in enumerate(copies):
        if renamed in replacements:
            copies[position] = (exit, original, replacements[renamed])


# ----------------------------------------------------------------------
# Post-pass bookkeeping

def _record_exits(problem: ScheduleProblem, schedule: RegionSchedule) -> None:
    for exit in problem.exits:
        sop = problem.exit_op_for(exit)
        if sop.cycle is None:
            raise SchedulingError(f"exit op for {exit!r} was never scheduled")
        schedule.exits.append(ExitRecord(exit, sop.cycle))


def _mark_speculation(problem: ScheduleProblem, schedule: RegionSchedule) -> None:
    """Mark ops issued before their home guard resolves as speculative."""
    count = 0
    for sop in schedule.all_ops():
        if sop.source is None or sop.exit is not None:
            continue
        guard = problem.guards.get(sop.home.bid)
        if guard is None:
            continue  # root ops are never speculative
        guard_def = problem.guard_def.get(guard)
        if guard_def is None or guard_def.effective_cycle is None:
            continue
        if sop.cycle is not None and sop.cycle <= guard_def.effective_cycle:
            sop.op.speculative = True
            count += 1
    schedule.speculated_count = count
