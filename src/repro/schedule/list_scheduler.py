"""The list scheduler (step 3 of Figure 3) with dominator parallelism.

This is a *placement-order* list scheduler: ops are visited in heuristic
priority order (the sorted DDG node list of Figure 3) and each is placed at
the earliest cycle that satisfies its dependences and has a free slot.
High-priority ops get first pick of the slots; lower-priority ops fill the
holes left over.  This matches the paper's observed behaviour — under the
dependence-height heuristic, ops far down the treegion share early slots
with ops near the root instead of starving them outright, and "on a very
wide machine a large amount of speculation will occur due to abundant
processor resources".

Placement runs through a heap of *placeable* ops (all DDG predecessors
already placed), keyed by priority rank.  For tree-shaped regions the four
priority orders are almost topological over the DDG — along a path,
dependence height never increases and block weight / exit count never
increase either — so the heap nearly always pops ops in exact priority
order; the heap exists to stay correct when floating-point profile weights
break monotonicity by an ulp.

The inner loop runs on the DDG's CSR arrays (see
:meth:`repro.schedule.ddg.DDG.finalize`): predecessor edges of the popped
op are the slice ``pred_ptr[i]:pred_ptr[i+1]`` of two parallel int lists,
placement cycles live in a local ``cycle_of`` int array (merged ops record
their survivor's cycle, so no ``effective_cycle`` chain is ever chased),
and the per-cycle resource table is three parallel int lists indexed by
``cycle - 1``.  No per-edge or per-op objects are touched until an op is
actually placed.

Dominator parallelism (Section 4) is folded in exactly where the paper puts
it — at schedule time: "if a tail duplicated Op A' is speculated into a
block where one of its duplicates A'' is already scheduled, A' can be
eliminated."  In the flattened predicated schedule an unguarded op executes
on every path through the region, so a duplicate about to be placed can be
merged into an already-placed sibling (same tail-duplication ``origin``)
whenever both clones still compute the same values — same opcode and
operands *and* the same DDG producers for every register source (per-path
renaming makes operand equality meaningful).  The merged op consumes no
slot; its consumers are rewired to read the survivor's destinations.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional

from repro.util.errors import SchedulingError
from repro.ir.registers import Register
from repro.machine.model import MachineModel
from repro.schedule.ddg import DDG
from repro.schedule.prep import ScheduleProblem
from repro.schedule.renaming import ExitCopy
from repro.schedule.schedule import ExitRecord, RegionSchedule, SchedOp


def list_schedule(
    problem: ScheduleProblem,
    ddg: DDG,
    order: List[SchedOp],
    machine: MachineModel,
    dominator_parallelism: bool = False,
    copies: Optional[List[ExitCopy]] = None,
    max_cycles: int = 1_000_000,
) -> RegionSchedule:
    """Place every op of ``order`` (the heuristic-sorted DDG node list)."""
    schedule = RegionSchedule(problem.region)
    copies = copies if copies is not None else []
    merge_table: Dict[int, List[SchedOp]] = {}

    sched_ops = problem.sched_ops
    n = len(sched_ops)

    ddg.finalize()
    pred_ptr, pred_src, pred_lat = ddg.pred_ptr, ddg.pred_src, ddg.pred_lat
    succ_ptr, succ_dst = ddg.succ_ptr, ddg.succ_dst

    ranks = [0] * n
    for position, sop in enumerate(order):
        ranks[sop.index] = position
    waiting = list(ddg.in_degree)
    ready = [(ranks[i], i) for i in range(n) if waiting[i] == 0]
    heapify(ready)

    #: cycle_of[i] — the effective issue cycle of op i once placed or
    #: merged (0 = not yet placed).  Merge survivors are always already
    #: placed, so a merged op's entry is final the moment it is written.
    cycle_of = [0] * n
    is_mem = [sop.op.is_memory for sop in sched_ops]
    is_br = [sop.op.is_branch for sop in sched_ops]

    issue_width = machine.issue_width
    max_mem = machine.max_memory_per_cycle
    max_br = machine.max_branches_per_cycle
    # Per-cycle occupancy, indexed by cycle - 1.
    used: List[int] = []
    memory: List[int] = []
    branches: List[int] = []

    placed = 0
    while ready:
        _rank, index = heappop(ready)
        sop = sched_ops[index]
        earliest = 1
        for e in range(pred_ptr[index], pred_ptr[index + 1]):
            candidate = cycle_of[pred_src[e]] + pred_lat[e]
            if candidate > earliest:
                earliest = candidate

        survivor = None
        if dominator_parallelism:
            survivor = _find_merge_target(problem, ddg, merge_table, sop)
        if survivor is not None:
            _merge(problem, ddg, schedule, copies, sop, survivor)
            cycle_of[index] = cycle_of[survivor.index]
        else:
            cycle = earliest
            mem = is_mem[index]
            br = is_br[index]
            while True:
                while len(used) < cycle:
                    used.append(0)
                    memory.append(0)
                    branches.append(0)
                slot = cycle - 1
                if used[slot] < issue_width and (
                    max_mem is None or not mem or memory[slot] < max_mem
                ) and (
                    max_br is None or not br or branches[slot] < max_br
                ):
                    break
                cycle += 1
                if cycle > max_cycles:
                    raise SchedulingError(
                        f"schedule exceeded {max_cycles} cycles placing {sop!r}"
                    )
            used[slot] += 1
            if mem:
                memory[slot] += 1
            if br:
                branches[slot] += 1
            schedule.place(sop, cycle)
            cycle_of[index] = cycle
            if (sop.source is not None and sop.op.guard is None
                    and sop.op.can_speculate):
                merge_table.setdefault(sop.source.origin, []).append(sop)

        placed += 1
        for e in range(succ_ptr[index], succ_ptr[index + 1]):
            succ = succ_dst[e]
            remaining = waiting[succ] - 1
            waiting[succ] = remaining
            if remaining == 0:
                heappush(ready, (ranks[succ], succ))

    if placed != n:
        raise SchedulingError(
            f"DDG has a cycle: only {placed}/{n} ops were placeable"
        )

    _record_exits(problem, schedule)
    _mark_speculation(problem, schedule)
    schedule.copies = list(copies)
    return schedule


# ----------------------------------------------------------------------
# Dominator parallelism

def _find_merge_target(
    problem: ScheduleProblem,
    ddg: DDG,
    merge_table: Dict[int, List[SchedOp]],
    sop: SchedOp,
) -> Optional[SchedOp]:
    """A scheduled duplicate that provably computes the same values."""
    if sop.source is None or sop.exit is not None:
        return None
    if sop.op.guard is not None or not sop.op.can_speculate:
        return None
    for candidate in merge_table.get(sop.source.origin, []):
        if candidate.home is sop.home:
            continue  # same block: that is CSE, not dominator parallelism
        if candidate.source is sop.source:
            continue
        if not candidate.op.same_computation(sop.op):
            continue
        if len(candidate.op.dests) != len(sop.op.dests):
            continue
        if not _same_producers(ddg, candidate, sop):
            continue
        return candidate
    return None


def _same_producers(ddg: DDG, a: SchedOp, b: SchedOp) -> bool:
    for src in b.op.srcs:
        if isinstance(src, Register):
            if ddg.producers[a.index].get(src) != ddg.producers[b.index].get(src):
                return False
    if a.op.is_load or b.op.is_load:
        # Loads only merge when they observe the same memory state.
        if ddg.mem_producers[a.index] != ddg.mem_producers[b.index]:
            return False
    return True


def _merge(
    problem: ScheduleProblem,
    ddg: DDG,
    schedule: RegionSchedule,
    copies: List[ExitCopy],
    sop: SchedOp,
    survivor: SchedOp,
) -> None:
    """Eliminate ``sop``; route its consumers to ``survivor``."""
    sop.merged_into = survivor
    schedule.merged.append(sop)
    replacements = dict(zip(sop.op.dests, survivor.op.dests))
    # Rewrite every (necessarily unplaced) consumer reading sop's dests.
    index = sop.index
    succ_ptr, succ_dst = ddg.succ_ptr, ddg.succ_dst
    for e in range(succ_ptr[index], succ_ptr[index + 1]):
        consumer = problem.sched_ops[succ_dst[e]].op
        for old, new in replacements.items():
            if old != new:
                consumer.replace_uses(old, new)
    for position, (exit, original, renamed) in enumerate(copies):
        if renamed in replacements:
            copies[position] = (exit, original, replacements[renamed])


# ----------------------------------------------------------------------
# Post-pass bookkeeping

def _record_exits(problem: ScheduleProblem, schedule: RegionSchedule) -> None:
    for exit in problem.exits:
        sop = problem.exit_op_for(exit)
        if sop.cycle is None:
            raise SchedulingError(f"exit op for {exit!r} was never scheduled")
        schedule.exits.append(ExitRecord(exit, sop.cycle))


def _mark_speculation(problem: ScheduleProblem, schedule: RegionSchedule) -> None:
    """Mark ops issued before their home guard resolves as speculative."""
    count = 0
    for sop in schedule.all_ops():
        if sop.source is None or sop.exit is not None:
            continue
        guard = problem.guards.get(sop.home.bid)
        if guard is None:
            continue  # root ops are never speculative
        guard_def = problem.guard_def.get(guard)
        if guard_def is None or guard_def.effective_cycle is None:
            continue
        if sop.cycle is not None and sop.cycle <= guard_def.effective_cycle:
            sop.op.speculative = True
            count += 1
    schedule.speculated_count = count
