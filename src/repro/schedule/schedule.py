"""Schedule data structures.

A :class:`SchedOp` is the scheduler's private view of one operation: the
underlying (possibly synthesized) :class:`~repro.ir.operation.Operation`
is cloned on entry, so scheduling never mutates the program IR.  A
:class:`RegionSchedule` is the result: MultiOps (one list of SchedOps per
cycle), per-exit retire cycles, and the bookkeeping the paper's metrics
need (copy ops from renaming, dominator-parallelism merges, speculation
counts).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.cfg import BasicBlock
from repro.ir.operation import Operation
from repro.ir.registers import Register
from repro.regions.region import Region, RegionExit


class SchedOp:
    """One schedulable operation inside a region scheduling problem."""

    __slots__ = (
        "index",
        "op",
        "home",
        "exit",
        "source",
        "cycle",
        "slot",
        "merged_into",
    )

    def __init__(
        self,
        index: int,
        op: Operation,
        home: BasicBlock,
        exit: Optional[RegionExit] = None,
        source: Optional[Operation] = None,
    ):
        #: Dense index; DDG adjacency and priority vectors are keyed on it.
        self.index = index
        #: The operation as scheduled (a private clone; mutation is safe).
        self.op = op
        #: The block this op belongs to in the region tree (its position
        #: *before* any speculation) — priorities read weight/exit counts
        #: from here.
        self.home = home
        #: For exit branch / RET ops: the region exit this op retires.
        self.exit = exit
        #: The original program op this was derived from (None for
        #: synthesized guards/PBRs/exit branches).
        self.source = source
        #: Assigned issue cycle (1-based) and slot, once scheduled.
        self.cycle: Optional[int] = None
        self.slot: Optional[int] = None
        #: Set when dominator parallelism eliminated this op in favour of
        #: an already-scheduled duplicate.
        self.merged_into: Optional["SchedOp"] = None

    @property
    def is_exit(self) -> bool:
        return self.exit is not None

    @property
    def scheduled(self) -> bool:
        return self.cycle is not None or self.merged_into is not None

    @property
    def effective_cycle(self) -> Optional[int]:
        """The cycle whose results this op's consumers see."""
        if self.merged_into is not None:
            return self.merged_into.effective_cycle
        return self.cycle

    def __repr__(self) -> str:
        from repro.ir.printer import format_operation

        tag = f"c{self.cycle}" if self.cycle is not None else "unsched"
        return f"<sop{self.index} [{tag}] {format_operation(self.op)}>"


class ExitRecord:
    """A region exit with its retire cycle (1-based) after scheduling."""

    __slots__ = ("exit", "cycle")

    def __init__(self, exit: RegionExit, cycle: int):
        self.exit = exit
        self.cycle = cycle

    @property
    def weight(self) -> float:
        return self.exit.weight

    @property
    def weighted_cycles(self) -> float:
        return self.exit.weight * self.cycle

    def __repr__(self) -> str:
        return f"<exit {self.exit!r} retires @ cycle {self.cycle}>"


class RegionSchedule:
    """The scheduled form of one region."""

    def __init__(self, region: Region):
        self.region = region
        #: cycles[c] = the MultiOp issued at cycle c+1 (list of SchedOps).
        self.cycles: List[List[SchedOp]] = []
        #: Exit retire records, in region exit order.
        self.exits: List[ExitRecord] = []
        #: Copy ops recorded by renaming: (exit, dest original register,
        #: renamed source register).  Recorded but not scheduled, matching
        #: the paper's accounting ("Copy Ops added due to renaming were
        #: not used in computing speedup").
        self.copies: List[Tuple[RegionExit, Register, Register]] = []
        #: SchedOps eliminated by dominator parallelism.
        self.merged: List[SchedOp] = []
        #: Count of ops that issued above their home guard (speculated).
        self.speculated_count = 0

    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Schedule height in cycles."""
        return len(self.cycles)

    @property
    def op_count(self) -> int:
        return sum(len(multiop) for multiop in self.cycles)

    def place(self, sop: SchedOp, cycle: int) -> None:
        """Record ``sop`` issuing at ``cycle`` (1-based)."""
        while len(self.cycles) < cycle:
            self.cycles.append([])
        multiop = self.cycles[cycle - 1]
        sop.cycle = cycle
        sop.slot = len(multiop)
        multiop.append(sop)

    def ops_at(self, cycle: int) -> List[SchedOp]:
        if cycle < 1 or cycle > len(self.cycles):
            return []
        return self.cycles[cycle - 1]

    def all_ops(self) -> List[SchedOp]:
        return [sop for multiop in self.cycles for sop in multiop]

    # ------------------------------------------------------------------
    # Stable public views.  The simulator, ``dot --schedule``, and the
    # lint certifier all read the schedule through these three accessors,
    # so they cannot drift apart on indexing conventions (1-based cycles,
    # merged ops resolving to their survivor's placement).

    def iter_bundles(self) -> Iterator[Tuple[int, List[SchedOp]]]:
        """``(cycle, MultiOp)`` pairs in issue order, cycles 1-based."""
        return enumerate(self.cycles, start=1)

    def placement(self, sop: SchedOp) -> Optional[Tuple[int, int]]:
        """The op's ``(cycle, slot)``, following dominator-parallelism
        merges to the surviving duplicate; None while unscheduled."""
        while sop.merged_into is not None:
            sop = sop.merged_into
        if sop.cycle is None or sop.slot is None:
            return None
        return (sop.cycle, sop.slot)

    def last_issue_by_block(self) -> Dict[int, int]:
        """Latest effective issue cycle per home block (bid-keyed).

        The quantity ``dot --schedule`` annotates blocks with; merged ops
        count at their survivor's cycle, like every other consumer-visible
        view of the schedule.
        """
        last: Dict[int, int] = {}
        for multiop in self.cycles:
            for sop in multiop:
                placed = self.placement(sop)
                assert placed is not None
                bid = sop.home.bid
                if placed[0] > last.get(bid, 0):
                    last[bid] = placed[0]
        for sop in self.merged:
            placed = self.placement(sop)
            if placed is None:
                continue
            bid = sop.home.bid
            if placed[0] > last.get(bid, 0):
                last[bid] = placed[0]
        return last

    def exit_cycle(self, exit: RegionExit) -> int:
        for record in self.exits:
            if record.exit is exit:
                return record.cycle
        raise KeyError(f"{exit!r} not in schedule")

    @property
    def weighted_time(self) -> float:
        """Profile-weighted execution time of this region:
        ``sum(exit weight * exit retire cycle)`` — the paper's estimate."""
        return sum(record.weighted_cycles for record in self.exits)

    @property
    def copy_count(self) -> int:
        """Renaming repair copies recorded for this region's exits."""
        return len(self.copies)

    @property
    def merged_count(self) -> int:
        """Ops eliminated by dominator parallelism."""
        return len(self.merged)

    # ------------------------------------------------------------------

    def format(self) -> str:
        """Human-readable MultiOp table (like the paper's Figures 4/5)."""
        from repro.ir.printer import format_operation

        lines = [f"schedule for {self.region!r} ({self.length} cycles)"]
        for c, multiop in enumerate(self.cycles, start=1):
            cells = " | ".join(format_operation(sop.op) for sop in multiop)
            lines.append(f"  {c:3}: {cells}")
        for record in self.exits:
            lines.append(f"  {record!r}")
        if self.copies:
            lines.append(f"  rename copies: {len(self.copies)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<schedule {self.region.kind} len={self.length} "
            f"ops={self.op_count} exits={len(self.exits)}>"
        )
