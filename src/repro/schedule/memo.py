"""Region-level memoization of the scheduling pipeline.

The evaluation grid schedules the same regions over and over: the four
heuristic columns of one cell row share bit-identical prep/renaming
output and (per machine) bit-identical DDGs, and different cells — even
different runs — often schedule regions with identical *content*.  This
module exploits both, in two tiers:

**Tier 1 — in-process structural sharing** (``id(region)``-keyed,
scoped to one (benchmark, scheme) group by :meth:`RegionMemo.begin_group`):

* prep + renaming depend on the machine only through ``use_btr``
  (:mod:`repro.schedule.prep` reads nothing else from the model), so one
  prepared :class:`~repro.schedule.prep.ScheduleProblem` serves every
  machine of a row that agrees on it — both paper machines do.  Between
  uses the only mutated state is per-op placement (``cycle``/``slot``/
  ``merged_into``/``op.speculative``), which is reset;
* the DDG and the four heuristics' priority keys read the machine only
  through its latency table
  (:func:`~repro.schedule.fingerprint.latency_fingerprint`), so they are
  built once per (region, latency model) — 4U and 8U share one build.

**Tier 2 — content-addressed result memo** (global, optionally
disk-backed): the full pipeline result is a pure function of
``(region content, machine, heuristic, flags)``, keyed by
:func:`repro.schedule.fingerprint.region_fingerprint` ×
:func:`~repro.schedule.fingerprint.machine_fingerprint`.  A hit skips
the pipeline entirely and returns a :class:`RegionSummary` carrying
exactly what the engine consumes (weighted time, length, copy/merge/
speculation counts).  With an artifact store attached
(:meth:`RegionMemo.attach_store`), entries persist across processes
under :func:`repro.serve.store.region_key`.

**Bit-identity.**  Summaries reproduce the direct path exactly:

* ``weighted_time`` is *recomputed* on every hit from the live region's
  exit weights (``sum(exit.weight * cycle)`` in exit order — the same
  float accumulation as
  :attr:`~repro.schedule.schedule.RegionSchedule.weighted_time`), never
  stored, because the fingerprint quantizes weights with ``%g`` while
  the estimate uses full-precision floats;
* deterministic observability counters are preserved by *replay*: every
  miss runs under a private :class:`~repro.obs.metrics.MetricsRegistry`
  whose snapshot is stored with the entry (tier-1 entries store their
  build deltas too, merged into each reusing miss), and every hit merges
  the stored snapshot into the active registry — so memo-on, memo-off,
  serial, and parallel runs of one grid report identical
  ``deterministic_snapshot()``s.

**Bypasses** (served by the direct pipeline, never cached): hyperblocks
(a different pipeline), ``options.certify`` or an active lint collector
(caller wants diagnostics, not numbers), and non-default ``max_cycles``.
Dominator parallelism bypasses tier 1 only — its merge step rewrites
consumer operands destructively, so each miss runs a fresh pipeline —
but memoizes fine at tier 2 (``dp`` is in the key).

Tier-2 keys assume the region's blocks/ops/weights do not change between
fingerprinting and scheduling — true for the engine, which forms fresh
regions per evaluation and never mutates IR while scheduling.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.ir.liveness import LivenessInfo
from repro.lint.collect import current_collector
from repro.machine.model import MachineModel
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    current_metrics,
    metrics_scope,
)
from repro.obs.tracer import NULL_TRACER
from repro.regions.region import Region
from repro.schedule.fingerprint import (
    latency_fingerprint,
    machine_fingerprint,
    region_fingerprint,
)
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.prep import prepare_region
from repro.schedule.priorities import all_priority_keys, priority_order
from repro.schedule.renaming import rename_region
from repro.schedule.scheduler import (
    ScheduleOptions,
    _insert_copy_ops,
    _record_schedule_metrics,
    schedule_region,
)
from repro.util.timing import NULL_TIMER, StageTimer

#: Tier-2 entry bound; one entry is a few hundred bytes, so the default
#: caps the in-memory memo around a few tens of MiB worst case.
DEFAULT_MAX_ENTRIES = 1 << 16

_DEFAULT_MAX_CYCLES = ScheduleOptions().max_cycles


class RegionSummary:
    """What the engine consumes from one region's schedule.

    Attribute-compatible with the slice of
    :class:`~repro.schedule.schedule.RegionSchedule` the evaluation
    engine reads (``weighted_time``/``length``/``copy_count``/
    ``merged_count``/``speculated_count``), so cached and fresh regions
    flow through the same accumulation code.
    """

    __slots__ = ("weighted_time", "length", "copy_count", "merged_count",
                 "speculated_count")

    def __init__(self, weighted_time: float, length: int, copy_count: int,
                 merged_count: int, speculated_count: int):
        self.weighted_time = weighted_time
        self.length = length
        self.copy_count = copy_count
        self.merged_count = merged_count
        self.speculated_count = speculated_count

    def __repr__(self) -> str:
        return (f"<RegionSummary len={self.length} "
                f"time={self.weighted_time:g}>")


class _Level2Entry:
    """A memoized pipeline result plus its metric replay snapshot."""

    __slots__ = ("exit_cycles", "length", "copy_count", "merged_count",
                 "speculated_count", "snapshot", "size")

    def __init__(self, exit_cycles: Tuple[int, ...], length: int,
                 copy_count: int, merged_count: int, speculated_count: int,
                 snapshot: Dict[str, object], size: int):
        self.exit_cycles = exit_cycles
        self.length = length
        self.copy_count = copy_count
        self.merged_count = merged_count
        self.speculated_count = speculated_count
        self.snapshot = snapshot
        self.size = size

    def payload(self) -> Dict[str, object]:
        return {
            "kind": "region",
            "exit_cycles": list(self.exit_cycles),
            "length": self.length,
            "copy_count": self.copy_count,
            "merged_count": self.merged_count,
            "speculated_count": self.speculated_count,
            "snapshot": self.snapshot,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "_Level2Entry":
        entry = cls(
            exit_cycles=tuple(int(c) for c in payload["exit_cycles"]),
            length=int(payload["length"]),
            copy_count=int(payload["copy_count"]),
            merged_count=int(payload["merged_count"]),
            speculated_count=int(payload["speculated_count"]),
            snapshot=dict(payload["snapshot"]),
            size=0,
        )
        entry.size = len(json.dumps(entry.payload(), sort_keys=True))
        return entry


class _ProblemEntry:
    """Tier-1 shared prep+renaming output for one region."""

    __slots__ = ("problem", "copies", "snapshot", "used")

    def __init__(self, problem, copies, snapshot):
        self.problem = problem
        self.copies = copies
        self.snapshot = snapshot
        self.used = False


class _DdgEntry:
    """Tier-1 shared DDG + priority keys for one (region, machine)."""

    __slots__ = ("ddg", "keys", "snapshot")

    def __init__(self, ddg, keys, snapshot):
        self.ddg = ddg
        self.keys = keys
        self.snapshot = snapshot


class RegionMemo:
    """Two-tier memo for :func:`repro.schedule.scheduler.schedule_region`.

    One instance per process is the intended shape (see
    :func:`global_memo`); tier 1 must be scoped to a formation lifetime
    with :meth:`begin_group`, tier 2 is content-addressed and safe
    forever.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 store=None) -> None:
        self.max_entries = max_entries
        #: Tier 2: (region fp, machine fp, heuristic, dp, sc) -> entry,
        #: LRU-ordered (oldest first).
        self._entries: "OrderedDict[Tuple, _Level2Entry]" = OrderedDict()
        #: Tier 1, cleared per group.
        self._problems: Dict[Tuple, _ProblemEntry] = {}
        self._ddgs: Dict[Tuple, _DdgEntry] = {}
        #: id(machine) -> (machine, fingerprint); the strong reference
        #: pins the id, so reuse cannot alias a collected model.
        self._machine_fps: Dict[int, Tuple[MachineModel, str]] = {}
        self._latency_fps: Dict[int, Tuple[MachineModel, str]] = {}
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.store_hits = 0
        self.bytes = 0
        self.store = store

    # ------------------------------------------------------------------

    def begin_group(self) -> None:
        """Reset tier-1 sharing (call when a new formation begins —
        ``id(region)`` keys must not outlive their region objects)."""
        self._problems.clear()
        self._ddgs.clear()

    def attach_store(self, store) -> None:
        """Back tier 2 with an artifact store (``None`` detaches)."""
        self.store = store

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "store_hits": self.store_hits,
            "bytes": self.bytes,
            "entries": len(self._entries),
        }

    # ------------------------------------------------------------------

    def _machine_fp(self, machine: MachineModel) -> str:
        cached = self._machine_fps.get(id(machine))
        if cached is not None:
            return cached[1]
        fingerprint = machine_fingerprint(machine)
        self._machine_fps[id(machine)] = (machine, fingerprint)
        return fingerprint

    def _latency_fp(self, machine: MachineModel) -> str:
        cached = self._latency_fps.get(id(machine))
        if cached is not None:
            return cached[1]
        fingerprint = latency_fingerprint(machine)
        self._latency_fps[id(machine)] = (machine, fingerprint)
        return fingerprint

    def _remember(self, key: Tuple, entry: _Level2Entry) -> None:
        entries = self._entries
        previous = entries.pop(key, None)
        if previous is not None:
            self.bytes -= previous.size
        entries[key] = entry
        self.bytes += entry.size
        while len(entries) > self.max_entries:
            _, evicted = entries.popitem(last=False)
            self.bytes -= evicted.size

    @staticmethod
    def _bypass(region: Region, options: ScheduleOptions) -> bool:
        from repro.regions.hyperblock import Hyperblock

        return (
            isinstance(region, Hyperblock)
            or options.certify
            or current_collector() is not None
            or options.max_cycles != _DEFAULT_MAX_CYCLES
        )

    # ------------------------------------------------------------------

    def schedule(
        self,
        region: Region,
        machine: MachineModel,
        options: ScheduleOptions,
        liveness: LivenessInfo,
        timer: StageTimer = NULL_TIMER,
        tracer=NULL_TRACER,
    ):
        """Schedule ``region`` through the memo.

        Returns a full :class:`~repro.schedule.schedule.RegionSchedule`
        on a miss (or bypass) and a :class:`RegionSummary` on a hit;
        both expose the accumulation attributes the engine reads.
        """
        if self._bypass(region, options):
            self.bypasses += 1
            return schedule_region(region, machine, options, liveness,
                                   timer=timer, tracer=tracer)

        fingerprint = region_fingerprint(region, liveness)
        key = (
            fingerprint,
            self._machine_fp(machine),
            options.heuristic,
            options.dominator_parallelism,
            options.schedule_copies,
        )
        # The exact backend is a different pure function of the same
        # inputs (and its result additionally depends on the node
        # budget), so its entries key separately; heuristic-backend
        # keys keep their historical five-part shape, so existing
        # stores stay valid.
        if options.backend != "heuristic":
            key = key + (options.backend, options.exact_budget)
        outer = current_metrics()

        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        elif self.store is not None:
            payload = self.store.get_payload(self._store_key(key))
            if payload is not None and payload.get("kind") == "region":
                try:
                    entry = _Level2Entry.from_payload(payload)
                except (KeyError, TypeError, ValueError):
                    entry = None
                if entry is not None:
                    self.store_hits += 1
                    self._remember(key, entry)

        if entry is not None:
            self.hits += 1
            if outer is not NULL_METRICS:
                outer.merge_snapshot(entry.snapshot)
            # Weighted time is recomputed from the *live* exit weights in
            # exit order — the fingerprint's %g quantization never leaks
            # into the estimate, and the float accumulation matches
            # RegionSchedule.weighted_time exactly.
            weighted_time = sum(
                exit.weight * cycle
                for exit, cycle in zip(region.exits(), entry.exit_cycles)
            )
            return RegionSummary(
                weighted_time=weighted_time,
                length=entry.length,
                copy_count=entry.copy_count,
                merged_count=entry.merged_count,
                speculated_count=entry.speculated_count,
            )

        self.misses += 1
        inner = MetricsRegistry()
        with metrics_scope(inner):
            if options.dominator_parallelism:
                # The dp merge step rewrites consumer operands in place,
                # so the prepared problem is single-use: run the full
                # reference pipeline fresh (tier 2 still caches it).
                schedule = schedule_region(region, machine, options,
                                           liveness, timer=timer,
                                           tracer=tracer)
            else:
                schedule = self._shared_pipeline(region, machine, options,
                                                 liveness, timer, tracer)
        snapshot = inner.deterministic_snapshot()
        if outer is not NULL_METRICS:
            outer.merge_snapshot(snapshot)

        entry = _Level2Entry(
            exit_cycles=tuple(record.cycle for record in schedule.exits),
            length=schedule.length,
            copy_count=len(schedule.copies),
            merged_count=len(schedule.merged),
            speculated_count=schedule.speculated_count,
            snapshot=snapshot,
            size=0,
        )
        entry.size = len(json.dumps(entry.payload(), sort_keys=True))
        self._remember(key, entry)
        if self.store is not None:
            self.store.put_payload(self._store_key(key), entry.payload(),
                                   defer_index=True)
        return schedule

    @staticmethod
    def _store_key(key: Tuple) -> str:
        """The content-addressed store key for one tier-2 memo key."""
        from repro.serve.store import region_key

        if len(key) == 5:
            return region_key(*key)
        return region_key(*key[:5], backend=key[5], exact_budget=key[6])

    # ------------------------------------------------------------------

    def _shared_pipeline(self, region, machine, options, liveness, timer,
                         tracer):
        """The reference stage sequence with tier-1 sharing in front."""
        active = current_metrics()
        sc = options.schedule_copies

        problem_key = (id(region), machine.use_btr, sc)
        problem_entry = self._problems.get(problem_key)
        if problem_entry is None:
            build = MetricsRegistry()
            with metrics_scope(build):
                with timer.stage("prep"), tracer.span("prep"):
                    problem = prepare_region(region, machine, liveness)
                with timer.stage("renaming"), tracer.span("renaming"):
                    copies = rename_region(problem, liveness)
                    if sc:
                        _insert_copy_ops(problem, copies)
            problem_entry = _ProblemEntry(problem, copies,
                                          build.deterministic_snapshot())
            self._problems[problem_key] = problem_entry
        else:
            if problem_entry.used:
                # Undo the placement state of the previous schedule; with
                # dp excluded from tier 1 these are the only mutations
                # list scheduling makes, so the reset problem is
                # bit-identical to a freshly prepared one.
                for sop in problem_entry.problem.sched_ops:
                    sop.cycle = None
                    sop.slot = None
                    sop.merged_into = None
                    sop.op.speculative = False
        if active is not NULL_METRICS:
            active.merge_snapshot(problem_entry.snapshot)
        problem = problem_entry.problem
        copies = problem_entry.copies

        # Keyed by latency fingerprint, not full machine fingerprint:
        # DDG edges and priority keys read the machine only through
        # latencies, so 4U and 8U share one DDG per region.
        ddg_key = (id(region), self._latency_fp(machine), sc)
        ddg_entry = self._ddgs.get(ddg_key)
        if ddg_entry is None:
            build = MetricsRegistry()
            with metrics_scope(build):
                with timer.stage("ddg"), tracer.span("ddg"):
                    from repro.schedule.ddg import build_ddg

                    ddg = build_ddg(problem, machine, liveness=liveness,
                                    copies=copies)
                    keys = all_priority_keys(problem, ddg)
            ddg_entry = _DdgEntry(ddg, keys, build.deterministic_snapshot())
            self._ddgs[ddg_key] = ddg_entry
        if active is not NULL_METRICS:
            active.merge_snapshot(ddg_entry.snapshot)

        if options.backend == "exact":
            # The exact backend shares tier 1 wholesale: it resets
            # placement between its internal heuristic runs with
            # exactly the entry reset above, so the problem comes back
            # in the same reusable state as after a list schedule.
            from repro.exact.backend import exact_schedule_problem

            with timer.stage("exact"), tracer.span("exact"):
                schedule, _info = exact_schedule_problem(
                    problem, ddg_entry.ddg, ddg_entry.keys, machine,
                    options, copies,
                )
                _record_schedule_metrics(schedule)
            problem_entry.used = True
            return schedule
        with timer.stage("ddg"):
            order = priority_order(problem, ddg_entry.ddg, options.heuristic,
                                   keys=ddg_entry.keys.get(options.heuristic))
        with timer.stage("list_schedule"), tracer.span("list_schedule"):
            schedule = _record_schedule_metrics(list_schedule(
                problem,
                ddg_entry.ddg,
                order,
                machine,
                dominator_parallelism=False,
                copies=copies,
                max_cycles=options.max_cycles,
            ))
        problem_entry.used = True
        return schedule


# ----------------------------------------------------------------------
# The process-global memo (what the engine uses by default)

_GLOBAL_MEMO: Optional[RegionMemo] = None


def global_memo() -> RegionMemo:
    """The process-wide region memo (created on first use)."""
    global _GLOBAL_MEMO
    if _GLOBAL_MEMO is None:
        _GLOBAL_MEMO = RegionMemo()
    return _GLOBAL_MEMO


def reset_global_memo() -> None:
    """Drop the process-wide memo (tests; reclaim memory)."""
    global _GLOBAL_MEMO
    _GLOBAL_MEMO = None
