"""Region scheduling: DDG construction, priority heuristics, list
scheduling, register renaming, and dominator parallelism.

This package implements Section 3 (and the scheduling half of Section 4)
of the paper for *any* tree-shaped region — treegions, SLRs, superblocks,
and basic blocks all go through the same three-step process of Figure 3:

    1. Form the DDG for the region           (:mod:`repro.schedule.ddg`)
    2. Sort its nodes with a heuristic       (:mod:`repro.schedule.priorities`)
    3. List-schedule the sorted nodes        (:mod:`repro.schedule.list_scheduler`)

plus the supporting passes the paper describes in prose: guard/predication
synthesis (:mod:`repro.schedule.prep`), compile-time register renaming
(:mod:`repro.schedule.renaming`), and dominator-parallelism elimination
(inside the list scheduler).

The entry point is :func:`~repro.schedule.scheduler.schedule_region`.
"""

from repro.schedule.schedule import RegionSchedule, SchedOp, ExitRecord
from repro.schedule.priorities import (
    HEURISTICS,
    Heuristic,
    priority_order,
)
from repro.schedule.scheduler import ScheduleOptions, schedule_region

__all__ = [
    "RegionSchedule",
    "SchedOp",
    "ExitRecord",
    "HEURISTICS",
    "Heuristic",
    "priority_order",
    "ScheduleOptions",
    "schedule_region",
]
