"""Tests for dominators, liveness, the verifier, and text round-trips."""

import pytest

from repro.ir import (
    CompareCond,
    DominatorTree,
    EdgeKind,
    Function,
    IRBuilder,
    Opcode,
    Program,
    RegClass,
    Register,
    compute_liveness,
    format_program,
    parse_program,
    verify_function,
)
from repro.util.errors import IRValidationError

from tests.helpers import (
    diamond_function,
    loop_function,
    program_with,
    straight_line_function,
    switch_function,
)


class TestDominators:
    def test_diamond(self):
        fn = diamond_function()
        entry, then_bb, else_bb, join = fn.cfg.blocks()
        dom = DominatorTree(fn.cfg)
        assert dom.dominates(entry, join)
        assert dom.dominates(entry, entry)
        assert not dom.dominates(then_bb, join)
        assert dom.idom(join) is entry
        assert dom.idom(entry) is None

    def test_loop_header_dominates_body(self):
        fn = loop_function()
        entry, header, body, exit_bb = fn.cfg.blocks()
        dom = DominatorTree(fn.cfg)
        assert dom.dominates(header, body)
        assert dom.dominates(header, exit_bb)
        assert not dom.dominates(body, exit_bb)

    def test_strict_dominance_is_irreflexive(self):
        fn = straight_line_function()
        blocks = fn.cfg.blocks()
        dom = DominatorTree(fn.cfg)
        assert dom.strictly_dominates(blocks[0], blocks[2])
        assert not dom.strictly_dominates(blocks[0], blocks[0])

    def test_dominated_by(self):
        fn = diamond_function()
        entry = fn.cfg.entry
        dom = DominatorTree(fn.cfg)
        assert set(b.bid for b in dom.dominated_by(entry)) == {
            b.bid for b in fn.cfg.blocks()
        }


class TestLiveness:
    def test_value_live_across_branch(self):
        fn = diamond_function()
        entry, then_bb, else_bb, join = fn.cfg.blocks()
        live = compute_liveness(fn.cfg)
        # 'then' defines t used in join: t is live out of then, into join.
        t = then_bb.ops[0].dest
        assert t in live.live_out(then_bb)
        assert t in live.live_in(join)
        # t is NOT defined before 'then', so it is (spuriously, in this
        # non-SSA IR) live-in to 'then'; what matters for renaming is the
        # else-path: t reaches join from both arms in the may-analysis.
        assert t in live.live_out(else_bb)

    def test_dead_value_not_live_out(self):
        fn = straight_line_function(n_blocks=2)
        b0, b1 = fn.cfg.blocks()
        dead = b0.ops[0].dest
        live = compute_liveness(fn.cfg)
        assert dead not in live.live_out(b0)

    def test_loop_carried_liveness(self):
        fn = loop_function()
        entry, header, body, exit_bb = fn.cfg.blocks()
        i = entry.ops[0].dest
        live = compute_liveness(fn.cfg)
        # i is live around the loop and into the exit (returned).
        assert i in live.live_out(body)
        assert i in live.live_in(header)
        assert i in live.live_in(exit_bb)

    def test_live_into_edge_matches_dest_live_in(self):
        fn = diamond_function()
        entry = fn.cfg.entry
        live = compute_liveness(fn.cfg)
        for edge in entry.out_edges:
            assert live.live_into_edge(edge) == live.live_in(edge.dst)


class TestDegenerateCfgs:
    """Edge shapes both dominators and liveness must not choke on:
    unreachable blocks, self-loops, entry-as-exit, and opless blocks."""

    def _unreachable(self):
        fn = Function("orphaned")
        b = IRBuilder(fn)
        entry = b.block("entry")
        orphan = b.block("orphan")
        b.at(entry)
        b.ret(0)
        b.at(orphan)
        b.ret(1)
        return fn, entry, orphan

    def _self_loop(self):
        fn = Function("spin", [Register(RegClass.GPR, 0)])
        fn.regs.reserve(Register(RegClass.GPR, 0))
        b = IRBuilder(fn)
        entry = b.block("entry")
        body = b.block("body")
        exit_bb = b.block("exit")
        b.at(entry)
        x = b.mov(0)
        b.fallthrough(body)
        b.at(body)
        p = b.cmpp(CompareCond.LT, x, fn.params[0])
        b.br_true(p, body, exit_bb)
        b.at(exit_bb)
        b.ret(x)
        return fn, body, x

    def _opless_middle(self):
        fn = Function("hollow")
        b = IRBuilder(fn)
        entry = b.block("entry")
        mid = b.block("mid")
        exit_bb = b.block("exit")
        b.at(entry)
        x = b.mov(3)
        b.fallthrough(mid)
        b.at(mid)
        b.fallthrough(exit_bb)
        b.at(exit_bb)
        b.ret(x)
        return fn, mid, x

    def test_dominators_skip_unreachable_blocks(self):
        fn, entry, orphan = self._unreachable()
        dom = DominatorTree(fn.cfg)
        assert dom.idom(orphan) is None
        assert not dom.dominates(entry, orphan)
        assert not dom.dominates(orphan, entry)
        assert orphan not in dom.dominated_by(entry)

    def test_liveness_unreachable_block_still_has_sets(self):
        fn, entry, orphan = self._unreachable()
        live = compute_liveness(fn.cfg)
        # The orphan's ret reads nothing; its sets exist and are empty.
        assert live.live_in(orphan) == frozenset()
        assert live.live_out(orphan) == frozenset()

    def test_self_loop_dominance(self):
        fn, body, _ = self._self_loop()
        dom = DominatorTree(fn.cfg)
        assert dom.dominates(body, body)
        assert not dom.strictly_dominates(body, body)
        assert dom.idom(body) is not body  # idom is the entry, not self

    def test_self_loop_carries_liveness_around(self):
        fn, body, x = self._self_loop()
        live = compute_liveness(fn.cfg)
        # x is read in the loop and after it: live around the back edge.
        assert x in live.live_in(body)
        assert x in live.live_out(body)
        back = next(e for e in body.out_edges if e.dst is body)
        assert live.live_into_edge(back) == live.live_in(body)

    def test_entry_is_also_exit(self):
        fn = Function("one", [Register(RegClass.GPR, 0)])
        fn.regs.reserve(Register(RegClass.GPR, 0))
        b = IRBuilder(fn)
        entry = b.block("entry")
        b.at(entry)
        b.ret(fn.params[0])
        dom = DominatorTree(fn.cfg)
        assert dom.idom(entry) is None
        assert dom.dominates(entry, entry)
        assert [blk.bid for blk in dom.dominated_by(entry)] == [entry.bid]
        live = compute_liveness(fn.cfg)
        assert fn.params[0] in live.live_in(entry)
        assert live.live_out(entry) == frozenset()

    def test_block_with_no_ops(self):
        fn, mid, x = self._opless_middle()
        dom = DominatorTree(fn.cfg)
        assert dom.strictly_dominates(fn.cfg.entry, mid)
        live = compute_liveness(fn.cfg)
        # Nothing defined or used: liveness flows straight through.
        assert live.live_in(mid) == live.live_out(mid) == frozenset({x})


class TestVerifier:
    def test_valid_functions_pass(self):
        for fn in (diamond_function(), loop_function(),
                   straight_line_function(), switch_function()):
            verify_function(fn)

    def test_missing_return_rejected(self):
        fn = Function("noret")
        b = IRBuilder(fn)
        blk = b.block()
        b.at(blk).mov(1)
        blk2 = b.block()
        b.fallthrough(blk2)
        b.at(blk2).mov(2)
        b.fallthrough(blk)
        with pytest.raises(IRValidationError):
            verify_function(fn)

    def test_terminator_must_be_last(self):
        fn = straight_line_function()
        block = fn.cfg.blocks()[0]
        ret = fn.cfg.new_op(Opcode.RET)
        block.ops.insert(0, ret)
        with pytest.raises(IRValidationError):
            verify_function(fn)

    def test_branch_edge_mismatch_rejected(self):
        fn = diamond_function()
        entry = fn.cfg.entry
        # Corrupt the branch target so it disagrees with the taken edge.
        entry.terminator.target = 999
        with pytest.raises(IRValidationError):
            verify_function(fn)

    def test_conditional_needs_predicate_operand(self):
        fn = Function("bad")
        b = IRBuilder(fn)
        e, t, f = b.block(), b.block(), b.block()
        b.at(e)
        r = b.mov(1)
        op = b.emit(Opcode.BRCT, srcs=[r], target=t.bid)
        fn.cfg.add_edge(e, t, EdgeKind.TAKEN)
        fn.cfg.add_edge(e, f, EdgeKind.FALLTHROUGH)
        b.at(t).ret()
        b.at(f).ret()
        with pytest.raises(IRValidationError):
            verify_function(fn)

    def test_duplicate_switch_cases_rejected(self):
        fn = switch_function()
        entry = fn.cfg.entry
        for edge in entry.case_edges():
            edge.case_value = 0
        with pytest.raises(IRValidationError):
            verify_function(fn)

    def test_fallthrough_block_needs_single_successor(self):
        fn = straight_line_function()
        b0, b1, b2 = fn.cfg.blocks()
        fn.cfg.add_edge(b0, b2, EdgeKind.FALLTHROUGH)
        with pytest.raises(IRValidationError):
            verify_function(fn)


class TestTextRoundTrip:
    @pytest.mark.parametrize("make", [
        diamond_function, loop_function, straight_line_function, switch_function,
    ])
    def test_print_parse_fixed_point(self, make):
        program = program_with(make())
        text = format_program(program)
        reparsed = parse_program(text)
        text2 = format_program(reparsed)
        assert format_program(parse_program(text2)) == text2

    def test_weights_and_globals_survive(self):
        fn = diamond_function()
        for block in fn.cfg.blocks():
            block.weight = 10.5
            for edge in block.out_edges:
                edge.weight = 3.25
        program = program_with(fn)
        program.add_global("A", size=2, initial=[4, 5])
        reparsed = parse_program(format_program(program))
        var = reparsed.globals["A"]
        assert var.size == 2 and var.initial == [4, 5]
        for block in reparsed.entry_function.cfg.blocks():
            assert block.weight == 10.5
            for edge in block.out_edges:
                assert edge.weight == 3.25

    def test_guards_conditions_and_spec_flags_survive(self):
        fn = Function("g")
        b = IRBuilder(fn)
        blk = b.block()
        b.at(blk)
        p_t, p_f = b.cmpp(CompareCond.LE, 3, 4, both=True)
        op = b.add(1, 2)
        blk.ops[-1].guard = p_t
        blk.ops[-1].speculative = True
        b.ret()
        program = program_with(fn)
        reparsed = parse_program(format_program(program))
        block = reparsed.entry_function.cfg.blocks()[0]
        cmpp, add, _ = block.ops
        assert cmpp.cond is CompareCond.LE and len(cmpp.dests) == 2
        assert add.guard is not None and add.speculative

    def test_parse_rejects_garbage(self):
        with pytest.raises(IRValidationError):
            parse_program("program entry=main\nfunc main() {\n  block bb1 weight=0\n    r1 = frobnicate r2\n}\n")
