"""``repro top``: the pure renderer and the polling loop.

:func:`render_top` is a pure function of the ``STATS`` payload, so the
rendering tests need no server; the loop tests run against a real
fleet front-end and against a dead endpoint.
"""

from __future__ import annotations

import io

from repro.cli import main
from repro.serve.client import Client
from repro.serve.frontend import FrontendServer
from repro.serve.top import ANSI_REFRESH, render_top, run_top

from tests.test_fleet import _fast_fleet, _grid

STATS = {
    "closed": False,
    "inflight": 2,
    "hot": {"entries": 3, "max": 4096, "bytes": 2048},
    "shards": [
        {"index": 0, "up": True, "generation": 0,
         "service": {"queued": 1, "inflight": 2,
                     "store": {"hits": 7, "misses": 3, "entries": 10}}},
        {"index": 1, "up": False, "generation": 2, "service": {}},
    ],
    "server": {"pid": 4242, "uptime_seconds": 12.5,
               "protocol_version": 1},
    "metrics": {
        "counters": {"fleet.requests": 40, "fleet.completed": 38,
                     "fleet.failed": 0, "fleet.deduped": 5,
                     "fleet.hot_hits": 9, "fleet.hot_evictions": 1,
                     "fleet.shard_restarts": 2, "fleet.shard_deaths": 1,
                     "fleet.shard_retries": 3},
        "gauges": {"memo.entries": 14, "memo.bytes": 6067},
    },
    "latency": {
        "compile": {"count": 12, "p50": 480, "p95": 3100,
                    "p99": 45000, "max": 1_800_000},
        "stats": {"count": 3, "p50": 55, "p95": 60, "p99": 60,
                  "max": 60},
    },
}


class TestRenderTop:
    def test_frame_carries_every_section(self):
        frame = render_top(STATS, endpoint="tcp://127.0.0.1:7421")
        assert "repro top — tcp://127.0.0.1:7421" in frame
        assert "server pid 4242" in frame
        assert "protocol v1" in frame and "serving" in frame
        assert "requests       40" in frame
        assert "deduped      5" in frame
        # Shard table: one row per shard, down shards flagged.
        assert "SHARD" in frame
        lines = frame.splitlines()
        shard_rows = [line for line in lines
                      if line.strip().startswith(("0 ", "1 "))]
        assert len(shard_rows) == 2
        assert "NO" in shard_rows[1]
        assert "hot tier  3/4096 entries  ~2.0KiB" in frame
        assert "restarts 2  deaths 1  retries 3" in frame
        assert "region memo  bytes 6067  entries 14" in frame
        # Latency rows format µs into human units.
        assert "480µs" in frame
        assert "45.0ms" in frame
        assert "1.80s" in frame

    def test_rates_from_previous_frame(self):
        previous = {"metrics": {"counters": {"fleet.requests": 10}}}
        frame = render_top(STATS, previous=previous, interval=2.0)
        assert "15.0 req/s" in frame
        assert "req/s" not in render_top(STATS)

    def test_degenerate_payload_still_renders(self):
        frame = render_top({})
        assert "repro top" in frame
        assert "(no requests in the rolling latency window)" in frame
        assert render_top({"closed": True}).count("CLOSED") == 1


class TestRunTop:
    def test_polls_live_fleet_and_renders_frames(self, tmp_path):
        cells = _grid()[:2]
        fleet = _fast_fleet(tmp_path)
        server = FrontendServer(fleet, "tcp://127.0.0.1:0")
        endpoint = server.start()
        try:
            with Client(endpoint) as client:
                client.evaluate(cells)
            out = io.StringIO()
            code = run_top(endpoint, interval=0.01, iterations=2,
                           stream=out, clear=False)
        finally:
            server.stop()
            fleet.close()
        assert code == 0
        text = out.getvalue()
        assert ANSI_REFRESH not in text  # clear=False appends
        assert text.count("repro top —") == 2
        assert "SHARD" in text
        assert "compile" in text  # rolling latency saw our requests

    def test_clear_mode_repaints(self, tmp_path):
        fleet = _fast_fleet(tmp_path, shards=1)
        server = FrontendServer(fleet, "tcp://127.0.0.1:0")
        endpoint = server.start()
        try:
            out = io.StringIO()
            run_top(endpoint, interval=0.01, iterations=1, stream=out)
        finally:
            server.stop()
            fleet.close()
        assert out.getvalue().startswith(ANSI_REFRESH)

    def test_unreachable_endpoint_reports_not_crashes(self):
        out = io.StringIO()
        code = run_top("tcp://127.0.0.1:1", interval=0.01,
                       iterations=2, stream=out, clear=False)
        assert code == 0
        assert out.getvalue().count("unreachable:") == 2


class TestTopCLI:
    def test_top_command_renders_one_frame(self, tmp_path, capsys):
        fleet = _fast_fleet(tmp_path, shards=1)
        server = FrontendServer(fleet, "tcp://127.0.0.1:0")
        endpoint = server.start()
        try:
            assert main(["top", "--endpoint", str(endpoint),
                         "--iterations", "1", "--interval", "0.01",
                         "--no-clear"]) == 0
        finally:
            server.stop()
            fleet.close()
        assert "repro top —" in capsys.readouterr().out

    def test_top_rejects_bad_interval(self, capsys):
        assert main(["top", "--endpoint", "tcp://127.0.0.1:1",
                     "--interval", "0"]) == 2
        assert "error" in capsys.readouterr().err
