"""Tests for the dataflow-analysis subsystem (``repro.analysis``).

Layers, bottom-up:

* **Solver** — the generic worklist iteration: direction handling,
  bottom values for unreachable blocks, degenerate graphs;
* **Analyses** — reaching definitions (must/may uninit classification
  and the path witness), live ranges (dead stores, pressure),
  const-aware reachability, and the whole-program call graph;
* **Bounds** — per-region lower bounds stay sound (≤ every achieved
  height) on the real workloads, driven through
  ``api.analyze_program``;
* **Plumbing** — the analysis cache counters, the armed/disarmed
  register-pressure lint rule, the parallel ``lint_many`` identity,
  and the ``repro analyze`` CLI contract.
"""

import dataclasses
import json

import pytest

from repro import api
from repro.analysis import (
    BlockGraph,
    CallGraph,
    LiveRanges,
    Reachability,
    ReachingDefinitions,
    region_lower_bounds,
    solve,
)
from repro.analysis.liveranges import block_peak_pressure
from repro.ir import (
    CompareCond,
    DominatorTree,
    Function,
    IRBuilder,
    Program,
    RegClass,
    Register,
    compute_liveness,
    format_program,
)
from repro.ir.analysis_cache import (
    GLOBAL_CACHE,
    live_ranges_of,
    reaching_definitions_of,
)
from repro.machine import VLIW_8U
from repro.obs import MetricsRegistry, metrics_scope
from repro.workloads.paper_example import build_paper_example
from repro.workloads.specint import build_benchmark

from tests.helpers import diamond_function, program_with


# ----------------------------------------------------------------------
# Shared shapes


def may_uninit_function():
    """v defined on the then-arm only; join reads it (may-uninit)."""
    fn = Function("maybe", [Register(RegClass.GPR, 0)])
    fn.regs.reserve(Register(RegClass.GPR, 0))
    b = IRBuilder(fn)
    entry = b.block("entry")
    then_bb = b.block("then")
    join = b.block("join")
    b.at(entry)
    p = b.cmpp(CompareCond.GT, fn.params[0], 0)
    b.br_true(p, then_bb, join)
    b.at(then_bb)
    v = b.mov(7)
    b.jump(join)
    b.at(join)
    b.ret(v)
    return fn, v


def orphan_block_function():
    """entry -> ret, plus a block nothing targets."""
    fn = Function("orphaned")
    b = IRBuilder(fn)
    entry = b.block("entry")
    orphan = b.block("orphan")
    b.at(entry)
    b.ret(0)
    b.at(orphan)
    b.ret(1)
    return fn, orphan


def const_branch_function():
    """Branch on cmpp over constants: the else arm can never execute."""
    fn = Function("constbr")
    b = IRBuilder(fn)
    entry = b.block("entry")
    then_bb = b.block("then")
    else_bb = b.block("else")
    b.at(entry)
    p = b.cmpp(CompareCond.GT, 1, 0)
    b.br_true(p, then_bb, else_bb)
    b.at(then_bb)
    b.ret(0)
    b.at(else_bb)
    b.ret(1)
    return fn, else_bb


def self_loop_function():
    """body branches back to itself until the param is reached."""
    fn = Function("spin", [Register(RegClass.GPR, 0)])
    fn.regs.reserve(Register(RegClass.GPR, 0))
    b = IRBuilder(fn)
    entry = b.block("entry")
    body = b.block("body")
    exit_bb = b.block("exit")
    b.at(entry)
    x = b.mov(0)
    b.fallthrough(body)
    b.at(body)
    p = b.cmpp(CompareCond.LT, x, fn.params[0])
    b.br_true(p, body, exit_bb)
    b.at(exit_bb)
    b.ret(x)
    return fn, body, x


def empty_block_function():
    """entry -> (empty mid) -> exit; mid has zero ops, edges only."""
    fn = Function("hollow")
    b = IRBuilder(fn)
    entry = b.block("entry")
    mid = b.block("mid")
    exit_bb = b.block("exit")
    b.at(entry)
    x = b.mov(3)
    b.fallthrough(mid)
    b.at(mid)
    b.fallthrough(exit_bb)
    b.at(exit_bb)
    b.ret(x)
    return fn, mid


# ----------------------------------------------------------------------
# Solver


class _CollectBids:
    """Forward union-of-bids: value_in(b) = bids on some path to b."""

    direction = "forward"

    def boundary(self):
        return frozenset()

    def transfer(self, block, value):
        return value | {block.bid}

    @staticmethod
    def join(a, b):
        return a | b


class TestSolver:
    def test_forward_joins_over_diamond(self):
        fn = diamond_function()
        blocks = {b.name: b for b in fn.cfg.blocks()}
        result = solve(BlockGraph(fn.cfg), _CollectBids())
        at_join = result.value_in(blocks["join"])
        assert blocks["then"].bid in at_join
        assert blocks["else"].bid in at_join
        assert blocks["join"].bid not in at_join  # in-value, not out
        assert result.value_out(blocks["join"]) == (
            at_join | {blocks["join"].bid}
        )

    def test_unreachable_block_stays_bottom(self):
        fn, orphan = orphan_block_function()
        result = solve(BlockGraph(fn.cfg), _CollectBids())
        assert result.value_in(orphan) is None
        assert result.value_out(orphan) is None

    def test_empty_cfg(self):
        fn = Function("nothing")
        graph = BlockGraph(fn.cfg)
        assert len(graph) == 0
        result = solve(graph, _CollectBids())
        assert result.in_values == [] and result.out_values == []

    def test_bad_direction_raises(self):
        class Sideways(_CollectBids):
            direction = "sideways"

        fn = diamond_function()
        with pytest.raises(ValueError):
            solve(BlockGraph(fn.cfg), Sideways())


# ----------------------------------------------------------------------
# Reaching definitions


class TestReachingDefinitions:
    def test_diamond_has_no_uninit_uses(self):
        fn = diamond_function()
        reaching = ReachingDefinitions(fn.cfg, params=tuple(fn.params))
        assert reaching.uninit_uses() == []

    def test_must_uninit_classified(self):
        fn = Function("uses")
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.add(Register(RegClass.GPR, 55), 1)
        b.ret(0)
        reaching = ReachingDefinitions(fn.cfg)
        uses = reaching.uninit_uses()
        assert [u.kind for u in uses] == ["must"]
        assert uses[0].reg == Register(RegClass.GPR, 55)
        path = reaching.def_free_path(uses[0].reg, uses[0].block)
        assert path == [f"bb{block.bid}"]

    def test_may_uninit_classified(self):
        fn, v = may_uninit_function()
        reaching = reaching_definitions_of(fn)
        uses = reaching.uninit_uses()
        assert [u.kind for u in uses] == ["may"]
        assert uses[0].reg == v
        # The witness path must skip the defining then-arm.
        blocks = {b.name: b for b in fn.cfg.blocks()}
        path = reaching.def_free_path(v, uses[0].block)
        assert path == [f"bb{blocks['entry'].bid}",
                        f"bb{blocks['join'].bid}"]

    def test_param_counts_as_defined(self):
        fn = Function("p", [Register(RegClass.GPR, 0)])
        fn.regs.reserve(Register(RegClass.GPR, 0))
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.add(fn.params[0], 1)
        b.ret(0)
        with_params = ReachingDefinitions(fn.cfg,
                                          params=tuple(fn.params))
        assert with_params.uninit_uses() == []
        without = ReachingDefinitions(fn.cfg)
        assert [u.kind for u in without.uninit_uses()] == ["must"]


# ----------------------------------------------------------------------
# Live ranges


class TestLiveRanges:
    def test_diamond_dead_store_is_the_join_add(self):
        fn = diamond_function()
        blocks = {b.name: b for b in fn.cfg.blocks()}
        ranges = LiveRanges(fn.cfg)
        stores = ranges.dead_stores()
        assert len(stores) == 1
        assert stores[0].block is blocks["join"]
        assert stores[0].op.opcode.value == "add"

    def test_live_sets_cross_the_diamond(self):
        fn = diamond_function()
        blocks = {b.name: b for b in fn.cfg.blocks()}
        ranges = LiveRanges(fn.cfg)
        live_into_join = ranges.live_in(blocks["join"])
        # t and e flow from the arms into the join's add.
        assert len([r for r in live_into_join
                    if r.rclass is RegClass.GPR]) == 2
        assert ranges.live_out(blocks["join"]) == frozenset()

    def test_block_pressure_matches_peak_walk(self):
        fn = diamond_function()
        ranges = LiveRanges(fn.cfg)
        for block in fn.cfg.blocks():
            expected = block_peak_pressure(block,
                                           ranges.live_out(block))
            assert ranges.block_pressure(block) == expected
        entry = next(b for b in fn.cfg.blocks() if b.name == "entry")
        peak = ranges.block_pressure(entry)
        assert peak[RegClass.GPR] >= 2      # t and e at least
        assert peak[RegClass.PRED] >= 1     # the branch predicate

    def test_region_pressure_is_blockwise_max(self):
        fn = diamond_function()
        ranges = LiveRanges(fn.cfg)
        blocks = fn.cfg.blocks()
        region = ranges.region_pressure(blocks)
        for rclass, count in region.items():
            assert count == max(
                ranges.block_pressure(b).get(rclass, 0) for b in blocks
            )

    def test_empty_block_is_harmless(self):
        fn, mid = empty_block_function()
        ranges = LiveRanges(fn.cfg)
        assert ranges.dead_stores() == []
        # x flows straight through the opless block.
        assert ranges.live_in(mid) == ranges.live_out(mid)
        assert len(ranges.live_in(mid)) == 1
        peak = block_peak_pressure(mid, ranges.live_out(mid))
        assert peak[RegClass.GPR] == 1
        assert peak[RegClass.PRED] == 0


# ----------------------------------------------------------------------
# Reachability


class TestReachability:
    def test_orphan_block_unreachable(self):
        fn, orphan = orphan_block_function()
        reach = Reachability(fn.cfg)
        assert not reach.is_reachable(orphan)
        assert reach.unreachable_blocks() == [orphan]
        assert reach.const_branches == []

    def test_const_branch_kills_the_dead_arm(self):
        fn, else_bb = const_branch_function()
        reach = Reachability(fn.cfg)
        assert len(reach.const_branches) == 1
        decided = reach.const_branches[0]
        assert decided.decision == "always taken"
        assert [e.dst for e in decided.dead_edges] == [else_bb]
        assert reach.unreachable_blocks() == [else_bb]

    def test_multiply_defined_register_is_not_const(self):
        # The diamond's branch predicate comes from a cmpp over a
        # param: not constant, so nothing is pruned.
        fn = diamond_function()
        reach = Reachability(fn.cfg)
        assert reach.const_branches == []
        assert reach.unreachable_blocks() == []


# ----------------------------------------------------------------------
# Call graph


class TestCallGraph:
    def _program(self):
        callee = diamond_function("callee")
        helper = diamond_function("helper")
        fn = Function("main")
        b = IRBuilder(fn)
        hot = b.block("hot")
        cold = b.block("cold")
        b.at(hot)
        b.call("callee", [1])
        b.fallthrough(cold)
        b.at(cold)
        b.call("helper", [2])
        b.call("exterior", [])
        b.ret(0)
        hot.weight = 90.0
        cold.weight = 10.0
        program = Program(entry="main")
        program.add_function(fn)
        program.add_function(callee)
        program.add_function(helper)
        return program

    def test_edges_and_external(self):
        graph = CallGraph(self._program())
        assert graph.callees["main"] == {"callee", "helper", "exterior"}
        assert graph.callers["callee"] == {"main"}
        assert graph.external == {"exterior"}
        assert graph.is_leaf("callee")
        assert not graph.is_leaf("main")

    def test_ranked_sites_hottest_first(self):
        graph = CallGraph(self._program())
        ranked = graph.ranked_sites()
        assert ranked[0].callee == "callee" and ranked[0].weight == 90.0
        assert {s.callee for s in ranked[1:]} == {"helper", "exterior"}
        assert graph.ranked_sites(limit=1) == ranked[:1]

    def test_recursion_detected(self):
        fn = Function("loopy")
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.call("loopy", [])
        b.ret(0)
        program = Program(entry="loopy")
        program.add_function(fn)
        graph = CallGraph(program)
        assert graph.recursive_functions() == {"loopy"}

    def test_to_json_round_trips_through_dumps(self):
        payload = CallGraph(self._program()).to_json()
        json.dumps(payload)  # must be JSON-serializable as-is
        assert payload["external"] == ["exterior"]


# ----------------------------------------------------------------------
# Bounds soundness through the driver


class TestBounds:
    @pytest.mark.parametrize("workload", ["paper", "compress"])
    def test_bounds_sound_on_workloads(self, workload):
        program = (build_paper_example() if workload == "paper"
                   else build_benchmark("compress"))
        result = api.analyze_program(program, name=workload)
        summary = result["summary"]
        assert summary["unsound"] == 0 and summary["sound"]
        for row in result["regions"]:
            assert row["lower_bound"] <= row["best"]
            assert row["lower_bound"] == max(row["critical_path"],
                                             row["resource_bound"])
            assert all(row["best"] <= h for h in row["achieved"].values())

    def test_single_block_region_bound_is_tight(self):
        # One straight-line block: the list scheduler achieves the
        # critical path / resource floor exactly.
        fn = diamond_function()
        result = api.analyze_program(program_with(fn),
                                     schemes=("bb",), lint=False)
        assert result["summary"]["tight"] == result["summary"]["regions"]
        assert result["summary"]["max_gap"] == 0

    def test_rejects_unknown_heuristic_and_hyperblock(self):
        program = program_with(diamond_function())
        with pytest.raises(ValueError):
            api.analyze_program(program, heuristics=("nope",))
        with pytest.raises(ValueError):
            api.analyze_program(program, schemes=("hyperblock",))


# ----------------------------------------------------------------------
# Cache plumbing


class TestAnalysisCachePlumbing:
    def test_analysis_family_counters_move(self):
        fn = diamond_function()
        before = GLOBAL_CACHE.analysis_misses
        live_ranges_of(fn.cfg)
        assert GLOBAL_CACHE.analysis_misses == before + 1
        hits = GLOBAL_CACHE.analysis_hits
        live_ranges_of(fn.cfg)
        assert GLOBAL_CACHE.analysis_hits == hits + 1

    def test_reaching_keyed_per_function_version(self):
        fn, _ = may_uninit_function()
        first = reaching_definitions_of(fn)
        assert reaching_definitions_of(fn) is first
        b = IRBuilder(fn)
        b.at(fn.cfg.blocks()[0])
        b.mov(1)  # bumps the CFG version
        assert reaching_definitions_of(fn) is not first

    def test_gauges_published(self):
        from repro.ir.analysis_cache import record_cache_metrics

        live_ranges_of(diamond_function().cfg)
        metrics = MetricsRegistry()
        record_cache_metrics(metrics)
        snapshot = metrics.snapshot()
        for name in ("cache.analysis.hits", "cache.analysis.misses",
                     "cache.analysis.evictions"):
            assert name in snapshot["gauges"]


# ----------------------------------------------------------------------
# The register-pressure schedule rule


class TestPressureRule:
    def test_disarmed_on_paper_presets(self):
        assert VLIW_8U.registers_per_class is None
        report = api.lint_program(build_paper_example(), schedule=True)
        assert "sched.pressure-exceeds-class" not in report.rule_ids()

    def test_armed_with_tiny_register_file(self):
        tight = dataclasses.replace(
            VLIW_8U, name="8U-tiny",
            registers_per_class={RegClass.GPR: 1},
        )
        report = api.lint_program(build_paper_example(), schedule=True,
                                  machine_model=tight)
        diags = [d for d in report
                 if d.rule == "sched.pressure-exceeds-class"]
        assert diags
        assert all(d.severity.value == "warning" for d in diags)
        assert "file holds 1" in diags[0].message


# ----------------------------------------------------------------------
# Parallel lint identity


class TestLintMany:
    def _targets(self):
        return [
            ("paper", build_paper_example()),
            ("compress", build_benchmark("compress")),
            ("maybe", program_with(may_uninit_function()[0])),
        ]

    @staticmethod
    def _render(results):
        return [(label, report.format()) for label, report in results]

    def test_pool_output_identical_to_serial(self):
        serial_metrics = MetricsRegistry()
        pooled_metrics = MetricsRegistry()
        from repro.lint.run import lint_many

        serial = lint_many(self._targets(), schedule=True, jobs=1,
                           metrics=serial_metrics)
        pooled = lint_many(self._targets(), schedule=True, jobs=2,
                           metrics=pooled_metrics)
        assert self._render(serial) == self._render(pooled)
        assert (serial_metrics.snapshot()["counters"]
                == pooled_metrics.snapshot()["counters"])

    def test_progress_called_per_target(self):
        from repro.lint.run import lint_many

        seen = []
        lint_many(self._targets(), jobs=1,
                  progress=lambda label, report: seen.append(label))
        assert seen == ["paper", "compress", "maybe"]


# ----------------------------------------------------------------------
# CLI contract


class TestAnalyzeCli:
    def _write(self, tmp_path, fn):
        path = tmp_path / f"{fn.name}.ir"
        path.write_text(format_program(program_with(fn)))
        return str(path)

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        status = main(["analyze", self._write(tmp_path,
                                              diamond_function())])
        out = capsys.readouterr().out
        assert status == 0
        assert "sound=yes" in out

    def test_json_payload_shape(self, tmp_path, capsys):
        from repro.cli import main

        status = main(["analyze",
                       self._write(tmp_path, diamond_function()),
                       "--calls", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["summary"]["sound"] is True
        assert payload["regions"]
        assert "call_graph" in payload
        assert payload["lint"]["errors"] == 0

    def test_lint_error_fails_the_gate(self, tmp_path, capsys):
        from repro.cli import main

        fn = Function("bad")
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.add(Register(RegClass.GPR, 55), 1)  # must-uninit: error
        b.ret(0)
        status = main(["analyze", self._write(tmp_path, fn)])
        capsys.readouterr()
        assert status == 1

    def test_file_xor_corpus(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, diamond_function())
        assert main(["analyze", path, "--corpus"]) == 2
        assert "repro: error:" in capsys.readouterr().err
        assert main(["analyze"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_unknown_heuristic_is_a_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, diamond_function())
        assert main(["analyze", path, "--heuristics", "nope"]) == 2
        assert "repro: error:" in capsys.readouterr().err
