"""The batched compilation service: identity, dedup, faults, wire.

The service's one non-negotiable is bit-identity: routing a grid cell
through batching, the worker pool, retries, and the artifact store must
produce the same :class:`CellResult` as the reference serial path.  The
fault-injection tests then kill workers, poison cache entries, and fill
the intake queue to show every recovery path preserves that identity.
"""

from __future__ import annotations

import functools
import json
import os
import socket
import threading
import time

import pytest

from repro.evaluation.engine import (
    GridCell,
    evaluate_cell,
    evaluate_grid,
)
from repro.ir.parser import parse_program
from repro.ir.printer import format_program
from repro.obs import MetricsRegistry
from repro.serve import (
    ArtifactStore,
    CompileService,
    JobFailedError,
    JobRequest,
    ServiceClosedError,
    ServiceSaturatedError,
    cell_key,
    resolve_program_text,
    result_from_payload,
    store_schema,
)
from repro.serve.client import Client, ClientError
from repro.serve.fleet import CompileFleet
from repro.serve.frontend import FrontendServer
from repro.serve.service import _service_worker
from repro.serve.wire import ErrorCode, send_frame
from repro.workloads.specint import build_benchmark

_NO_SLEEP = lambda seconds: None  # noqa: E731 - retry backoff stub


def _grid(heuristics=("global_weight", "dep_height"),
          machines=("4U",), schemes=("bb", "treegion")):
    return [
        GridCell("compress", scheme, machine, heuristic)
        for scheme in schemes
        for machine in machines
        for heuristic in heuristics
    ]


# -- fault-injection workers (module level: they cross the fork) -------

def _crash_once_worker(flag_path, task):
    """Die hard on the first call ever, behave on every later one."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("crashed\n")
        os._exit(1)
    return _service_worker(task)


def _hang_once_worker(flag_path, task):
    """Overrun any reasonable job timeout once, then behave."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("hung\n")
        time.sleep(2.0)
    return _service_worker(task)


def _always_failing_worker(task):
    raise ValueError("deterministically unschedulable")


def _gated_worker(gate_path, task):
    """Block until the test opens the gate (deterministic queue fill)."""
    while not os.path.exists(gate_path):
        time.sleep(0.01)
    return _service_worker(task)


class TestIdentity:
    def test_service_matches_serial_and_per_cell(self):
        cells = _grid()
        direct = evaluate_grid(cells)
        with CompileService(jobs=2) as service:
            served = service.evaluate(cells)
        assert served == direct
        assert served[0] == evaluate_cell(cells[0])

    def test_cold_and_warm_store_match_direct(self, tmp_path):
        cells = _grid()
        direct = evaluate_grid(cells)
        store = ArtifactStore(str(tmp_path))
        with CompileService(store=store, jobs=2) as service:
            cold = service.evaluate(cells)
        # A fresh service on the same directory answers from disk.
        warm_store = ArtifactStore(str(tmp_path))
        with CompileService(store=warm_store, jobs=2) as service:
            handles = [service.submit(JobRequest(cell=cell))
                       for cell in cells]
            warm = [handle.result(60.0) for handle in handles]
            assert all(handle.cached for handle in handles)
        assert cold == direct
        assert warm == direct
        assert warm_store.hits == len(cells)

    def test_explicit_program_text_round_trips(self):
        text = format_program(build_benchmark("compress"))
        cell = GridCell("compress", "treegion", "4U", "global_weight")
        reference = evaluate_cell(cell, program=parse_program(text))
        with CompileService(jobs=1) as service:
            [served] = service.evaluate([cell], program_text=text)
        assert served == reference

    def test_results_come_back_in_input_order(self):
        cells = _grid()
        with CompileService(jobs=2, batch_size=2) as service:
            served = service.evaluate(cells)
        assert [result.cell for result in served] == cells


class TestDedupAndBatching:
    def test_inflight_duplicates_share_one_handle(self, tmp_path):
        gate = str(tmp_path / "gate")
        metrics = MetricsRegistry()
        cell = _grid()[0]
        service = CompileService(
            jobs=1, metrics=metrics,
            worker=functools.partial(_gated_worker, gate),
        )
        try:
            first = service.submit(JobRequest(cell=cell))
            second = service.submit(JobRequest(cell=cell))
            assert second is first
            with open(gate, "w") as handle:
                handle.write("go\n")
            assert first.result(60.0) == evaluate_cell(cell)
        finally:
            service.close()
        assert metrics.snapshot()["counters"]["serve.jobs.deduped"] == 1

    def test_cache_hit_skips_the_pool(self, tmp_path):
        cell = _grid()[0]
        store = ArtifactStore(str(tmp_path / "store"))
        key = cell_key(resolve_program_text(JobRequest(cell=cell)), cell)
        store.put(key, evaluate_cell(cell))
        # A worker that would fail proves the pool is never consulted.
        with CompileService(store=store,
                            worker=_always_failing_worker) as service:
            handle = service.submit(JobRequest(cell=cell))
            assert handle.cached
            assert handle.attempts == 0
            assert handle.result(10.0) == evaluate_cell(cell)


class TestFaults:
    def test_killed_worker_is_retried_to_success(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        metrics = MetricsRegistry()
        cell = _grid()[0]
        with CompileService(
            jobs=1, retries=2, metrics=metrics, sleep=_NO_SLEEP,
            worker=functools.partial(_crash_once_worker, flag),
        ) as service:
            handle = service.submit(JobRequest(cell=cell))
            result = handle.result(60.0)
        assert result == evaluate_cell(cell)
        assert handle.attempts == 2
        counters = metrics.snapshot()["counters"]
        assert counters["serve.worker_crashes"] == 1
        assert counters["serve.jobs.retries"] == 1
        assert counters["serve.jobs.completed"] == 1

    def test_hung_worker_times_out_and_retries(self, tmp_path):
        flag = str(tmp_path / "hung-once")
        metrics = MetricsRegistry()
        cell = _grid()[0]
        with CompileService(
            jobs=1, retries=2, job_timeout=0.3, metrics=metrics,
            sleep=_NO_SLEEP,
            worker=functools.partial(_hang_once_worker, flag),
        ) as service:
            handle = service.submit(JobRequest(cell=cell))
            result = handle.result(60.0)
        assert result == evaluate_cell(cell)
        assert metrics.snapshot()["counters"]["serve.timeouts"] == 1

    def test_deterministic_failure_fails_fast(self):
        metrics = MetricsRegistry()
        cell = _grid()[0]
        with CompileService(jobs=1, retries=5, metrics=metrics,
                            sleep=_NO_SLEEP,
                            worker=_always_failing_worker) as service:
            handle = service.submit(JobRequest(cell=cell))
            with pytest.raises(JobFailedError, match="unschedulable"):
                handle.result(60.0)
        # No retry budget spent: replaying a deterministic job is futile.
        assert handle.attempts == 1
        counters = metrics.snapshot()["counters"]
        assert counters["serve.jobs.failed"] == 1
        assert "serve.jobs.retries" not in counters

    def test_retry_budget_exhaustion_fails_the_job(self, tmp_path):
        always_crash = str(tmp_path / "never-created") + "/missing"
        cell = _grid()[0]
        with CompileService(
            jobs=1, retries=1, sleep=_NO_SLEEP,
            worker=functools.partial(_crash_once_worker, always_crash),
        ) as service:
            handle = service.submit(JobRequest(cell=cell))
            with pytest.raises(JobFailedError, match="2 attempt"):
                handle.result(60.0)

    def test_poisoned_cache_entry_recomputes_correctly(self, tmp_path):
        cell = _grid()[0]
        store = ArtifactStore(str(tmp_path / "store"))
        key = cell_key(resolve_program_text(JobRequest(cell=cell)), cell)
        poison = store._object_path(key)
        os.makedirs(os.path.dirname(poison), exist_ok=True)
        with open(poison, "w") as handle:
            handle.write('{"schema": "evil", "time": -1}')
        with CompileService(store=store, jobs=1) as service:
            handle = service.submit(JobRequest(cell=cell))
            result = handle.result(60.0)
        assert not handle.cached
        assert result == evaluate_cell(cell)
        assert store.corrupt == 1
        # The recompute healed the entry on disk.
        assert ArtifactStore(str(tmp_path / "store")).get(key) == result

    def test_full_queue_applies_backpressure_then_drains(self, tmp_path):
        gate = str(tmp_path / "gate")
        cells = _grid(heuristics=("global_weight", "dep_height",
                                  "exit_count"))[:3]
        metrics = MetricsRegistry()
        service = CompileService(
            jobs=1, batch_size=1, max_pending=1, metrics=metrics,
            worker=functools.partial(_gated_worker, gate),
        )
        try:
            first = service.submit(JobRequest(cell=cells[0]))
            # Wait for the dispatcher to pull the first job so exactly
            # one queue slot is in play.
            deadline = time.monotonic() + 5.0
            while service._queue.qsize() and time.monotonic() < deadline:
                time.sleep(0.01)
            second = service.submit(JobRequest(cell=cells[1]))
            with pytest.raises(ServiceSaturatedError):
                service.submit(JobRequest(cell=cells[2]))
            with open(gate, "w") as handle:
                handle.write("go\n")
            assert first.result(60.0) == evaluate_cell(cells[0])
            assert second.result(60.0) == evaluate_cell(cells[1])
            # Pressure released: the rejected job now goes through.
            third = service.submit(JobRequest(cell=cells[2]))
            assert third.result(60.0) == evaluate_cell(cells[2])
        finally:
            service.close()
        assert metrics.snapshot()["counters"]["serve.jobs.rejected"] == 1


class TestShutdown:
    def test_non_draining_close_cancels_queued_jobs(self, tmp_path):
        gate = str(tmp_path / "gate")
        cells = _grid()
        service = CompileService(
            jobs=1, batch_size=1, max_pending=4,
            worker=functools.partial(_gated_worker, gate),
        )
        dispatched = service.submit(JobRequest(cell=cells[0]))
        deadline = time.monotonic() + 5.0
        while service._queue.qsize() and time.monotonic() < deadline:
            time.sleep(0.01)
        queued = service.submit(JobRequest(cell=cells[1]))
        opener = threading.Timer(0.2, lambda: open(gate, "w").close())
        opener.start()
        try:
            service.close(drain=False, timeout=30.0)
        finally:
            opener.join()
        # The in-flight job still completed; the queued one was failed.
        assert dispatched.result(60.0) == evaluate_cell(cells[0])
        with pytest.raises(ServiceClosedError):
            queued.result(60.0)
        with pytest.raises(ServiceClosedError):
            service.submit(JobRequest(cell=cells[2]))

    def test_draining_close_finishes_accepted_work(self):
        cells = _grid()
        service = CompileService(jobs=1, batch_size=2)
        handles = [service.submit(JobRequest(cell=cell)) for cell in cells]
        service.close(drain=True, timeout=120.0)
        direct = evaluate_grid(cells)
        assert [handle.result(0.0) for handle in handles] == direct


class TestWire:
    """The served path over a unix socket (the old ``--socket`` shape)."""

    def _start_server(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        fleet = CompileFleet(shards=1, jobs=1,
                             cache_dir=str(tmp_path / "store"))
        server = FrontendServer(fleet, f"unix://{path}")
        endpoint = server.start()
        return path, endpoint, fleet, server

    def test_socket_round_trip_cold_then_warm(self, tmp_path):
        path, endpoint, fleet, server = self._start_server(tmp_path)
        try:
            with Client(endpoint) as client:
                assert client.server_info is not None
                assert client.server_info.schema == store_schema()

                cell = GridCell("compress", "treegion", "4U",
                                "global_weight")
                cold = client.submit(cell)
                assert not cold.cached and cold.source == "computed"
                warm = client.submit(cell)
                assert warm.cached and warm.source == "hot"
                expected = evaluate_cell(cell)
                for reply in (cold, warm):
                    assert result_from_payload(reply.result) == expected

                ping = client.ping()
                assert ping.healthy and ping.shards

                stats = client.stats()
                assert stats["hot"]["entries"] >= 1
                assert stats["shards"][0]["up"]

                with pytest.raises(ClientError) as failure:
                    client.submit(GridCell("compress", "no-such-scheme",
                                           "4U", "global_weight"))
                assert failure.value.code == ErrorCode.BAD_REQUEST

            with Client(endpoint) as client:
                client.shutdown()
            server.join(timeout=30.0)
        finally:
            fleet.close()
        assert not server.running
        assert not os.path.exists(path)

    def test_malformed_frame_does_not_kill_the_server(self, tmp_path):
        path, endpoint, fleet, server = self._start_server(tmp_path)
        try:
            # Garbage inside a well-formed frame: one error reply, and
            # the server keeps accepting fresh connections.
            with socket.socket(socket.AF_UNIX,
                               socket.SOCK_STREAM) as sock:
                sock.settimeout(10.0)
                sock.connect(path)
                send_frame(sock, {"this is": "not a hello"})
                from repro.serve.wire import recv_frame

                garbage = recv_frame(sock, 1 << 20)
            assert garbage == {
                "ok": False, "code": ErrorCode.BAD_REQUEST,
                "error": garbage["error"],
            }
            with Client(endpoint) as client:
                assert client.ping().healthy
                client.shutdown()
            server.join(timeout=30.0)
        finally:
            fleet.close()
