"""The framed, versioned wire protocol and the endpoint scheme.

Pure-codec tests (no sockets) for framing edges — truncation,
oversize, garbage — plus live front-end tests for the handshake rules:
version negotiation, hello-first enforcement, and the structured error
codes a client can rely on.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.evaluation.engine import GridCell
from repro.obs.metrics import Histogram
from repro.serve.fleet import CompileFleet
from repro.serve.frontend import FrontendServer
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CompileReply,
    CompileRequest,
    Endpoint,
    ErrorCode,
    ErrorReply,
    FrameTooLargeError,
    HealthReply,
    HealthRequest,
    Hello,
    HelloReply,
    PingReply,
    PingRequest,
    ProtocolError,
    ShutdownReply,
    ShutdownRequest,
    StatsReply,
    StatsRequest,
    TruncatedFrameError,
    decode_frame_body,
    encode_frame,
    parse_endpoint,
    recv_frame,
    reply_from_wire,
    reply_to_wire,
    request_from_wire,
    request_to_wire,
    send_frame,
)


class TestEndpoints:
    def test_unix_and_tcp_round_trip(self):
        unix = parse_endpoint("unix:///tmp/fleet.sock")
        assert unix == Endpoint(scheme="unix", path="/tmp/fleet.sock")
        assert parse_endpoint(str(unix)) == unix

        tcp = parse_endpoint("tcp://127.0.0.1:7421")
        assert tcp == Endpoint(scheme="tcp", host="127.0.0.1", port=7421)
        assert parse_endpoint(str(tcp)) == tcp

    def test_bare_path_is_legacy_unix(self):
        assert parse_endpoint("/tmp/old.sock") == Endpoint(
            scheme="unix", path="/tmp/old.sock")

    def test_endpoint_objects_pass_through(self):
        endpoint = Endpoint(scheme="tcp", host="h", port=1)
        assert parse_endpoint(endpoint) is endpoint

    @pytest.mark.parametrize("bad", [
        "", "unix://", "tcp://", "tcp://host", "tcp://host:notaport",
        "tcp://host:70000", "http://host:80",
    ])
    def test_rejects_malformed_endpoints(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


class TestFraming:
    def _pair(self):
        server, client = socket.socketpair()
        server.settimeout(5.0)
        client.settimeout(5.0)
        return server, client

    def test_frame_round_trip_carries_newlines(self):
        server, client = self._pair()
        with server, client:
            message = {"op": "compile", "program_text": "line1\nline2\n"}
            send_frame(client, message)
            assert recv_frame(server) == message

    def test_clean_eof_is_none(self):
        server, client = self._pair()
        with server:
            client.close()
            assert recv_frame(server) is None

    def test_truncated_header_and_body_raise(self):
        server, client = self._pair()
        with server:
            client.sendall(b"\x00\x00")  # half a header
            client.close()
            with pytest.raises(TruncatedFrameError):
                recv_frame(server)
        server, client = self._pair()
        with server:
            frame = encode_frame({"op": "ping"})
            client.sendall(frame[:-3])  # header + partial body
            client.close()
            with pytest.raises(TruncatedFrameError):
                recv_frame(server)

    def test_oversized_frame_rejected_before_body_read(self):
        server, client = self._pair()
        with server, client:
            # A header claiming 1 GiB; no body ever sent — the reader
            # must reject on the header alone instead of buffering.
            client.sendall(struct.pack(">I", 1 << 30))
            with pytest.raises(FrameTooLargeError):
                recv_frame(server)

    def test_encode_refuses_oversized_body(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"pad": "x" * (MAX_FRAME_BYTES + 1)})

    def test_garbage_body_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_frame_body(b"this is not json")
        with pytest.raises(ProtocolError):
            decode_frame_body(b'"a json string, not an object"')

    def test_bounded_reader_honours_custom_limit(self):
        server, client = self._pair()
        with server, client:
            send_frame(client, {"pad": "x" * 1024})
            with pytest.raises(FrameTooLargeError):
                recv_frame(server, max_bytes=64)


class TestMessageCodecs:
    def test_requests_round_trip(self):
        cell = GridCell("compress", "treegion", "4U", "global_weight",
                        dominator_parallelism=True)
        for request in (
            Hello(protocol_version=PROTOCOL_VERSION, client="t"),
            CompileRequest(cell=cell, program_text="program entry=...",
                           timeout=5.0),
            CompileRequest(cell=cell),
            CompileRequest(cell=cell, trace_id="a" * 32,
                           parent_span_id="b" * 16),
            PingRequest(),
            StatsRequest(),
            HealthRequest(),
            ShutdownRequest(),
        ):
            assert request_from_wire(request_to_wire(request)) == request

    def test_replies_round_trip(self):
        for reply in (
            HelloReply(protocol_version=1, schema="s", shards=4),
            CompileReply(result={"key": "k"}, cached=True, attempts=0,
                         shard=2, source="hot"),
            PingReply(protocol_version=1, schema="s", healthy=True,
                      shards={"0": {"up": True}}),
            StatsReply(stats={"inflight": 0}),
            HealthReply(healthy=True, shards={"0": {"up": True}},
                        uptime_seconds=1.5, pid=42),
            ShutdownReply(),
            ErrorReply(code=ErrorCode.SATURATED, message="queue full"),
        ):
            assert reply_from_wire(reply_to_wire(reply)) == reply

    def test_trace_context_is_optional_and_version_1_compatible(self):
        cell = GridCell("compress", "treegion", "4U", "global_weight",
                        dominator_parallelism=True)
        # A context-free request puts NO trace keys on the wire — the
        # exact frames a pre-tracing peer produces and expects.
        bare = request_to_wire(CompileRequest(cell=cell))
        assert "trace_id" not in bare and "parent_span_id" not in bare
        parsed = request_from_wire(bare)
        assert parsed.trace_id is None and parsed.parent_span_id is None
        # With context, both fields ride along.
        traced = request_to_wire(CompileRequest(
            cell=cell, trace_id="t1", parent_span_id="s1"))
        assert traced["trace_id"] == "t1"
        assert traced["parent_span_id"] == "s1"

    def test_malformed_trace_fields_are_bad_request(self):
        cell_wire = request_to_wire(CompileRequest(
            cell=GridCell("compress", "treegion", "4U",
                          "global_weight", dominator_parallelism=True)))
        for field, bad in (("trace_id", 7), ("parent_span_id", ["x"])):
            raw = dict(cell_wire)
            raw[field] = bad
            with pytest.raises(ProtocolError) as failure:
                request_from_wire(raw)
            assert failure.value.code == ErrorCode.BAD_REQUEST

    def test_unknown_op_and_bad_fields_are_bad_request(self):
        for raw in (
            {"op": "no-such-op"},
            {"op": "hello", "protocol_version": "one"},
            {"op": "compile"},
            {"op": "compile", "cell": "not a dict"},
            {"op": "compile", "cell": {"scheme": 7}},
        ):
            with pytest.raises(ProtocolError) as failure:
                request_from_wire(raw)
            assert failure.value.code == ErrorCode.BAD_REQUEST

    def test_unknown_error_code_degrades_to_internal(self):
        reply = reply_from_wire(
            {"ok": False, "code": "FUTURE_CODE", "error": "?"})
        assert isinstance(reply, ErrorReply)
        assert reply.code == ErrorCode.INTERNAL


@pytest.fixture
def live_endpoint(tmp_path):
    fleet = CompileFleet(shards=1, jobs=1,
                         cache_dir=str(tmp_path / "cache"))
    server = FrontendServer(fleet, "tcp://127.0.0.1:0")
    endpoint = server.start()
    yield endpoint
    server.stop()
    fleet.close(drain=False)


def _dial(endpoint):
    sock = socket.create_connection((endpoint.host, endpoint.port),
                                    timeout=10.0)
    sock.settimeout(10.0)
    return sock


class TestHandshake:
    def test_version_mismatch_is_rejected_and_closed(self, live_endpoint):
        with _dial(live_endpoint) as sock:
            send_frame(sock, {"op": "hello",
                              "protocol_version": PROTOCOL_VERSION + 1})
            reply = recv_frame(sock)
            assert reply["ok"] is False
            assert reply["code"] == ErrorCode.UNSUPPORTED_VERSION
            assert recv_frame(sock) is None  # server hung up

    def test_first_frame_must_be_hello(self, live_endpoint):
        with _dial(live_endpoint) as sock:
            send_frame(sock, {"op": "ping"})
            reply = recv_frame(sock)
            assert reply["ok"] is False
            assert reply["code"] == ErrorCode.BAD_REQUEST

    def test_second_hello_is_rejected_without_closing(self, live_endpoint):
        with _dial(live_endpoint) as sock:
            send_frame(sock, request_to_wire(Hello()))
            hello = reply_from_wire(recv_frame(sock))
            assert isinstance(hello, HelloReply)
            assert hello.protocol_version == PROTOCOL_VERSION
            send_frame(sock, request_to_wire(Hello()))
            again = recv_frame(sock)
            assert again["ok"] is False
            assert again["code"] == ErrorCode.BAD_REQUEST
            # The connection survives in-frame mistakes.
            send_frame(sock, request_to_wire(PingRequest()))
            assert recv_frame(sock)["ok"] is True

    def test_in_frame_garbage_answers_then_oversize_closes(
            self, live_endpoint):
        with _dial(live_endpoint) as sock:
            send_frame(sock, request_to_wire(Hello()))
            assert recv_frame(sock)["ok"] is True
            sock.sendall(struct.pack(">I", 8)
                         + b"notjsonn")  # valid length, garbage body
            assert recv_frame(sock)["code"] == ErrorCode.BAD_REQUEST
            sock.sendall(struct.pack(">I", 1 << 30))
            reply = recv_frame(sock)  # best-effort error, then close
            if reply is not None:
                assert reply["ok"] is False
                assert recv_frame(sock) is None


class TestHealthOp:
    def test_health_over_the_wire(self, live_endpoint):
        with _dial(live_endpoint) as sock:
            send_frame(sock, request_to_wire(Hello()))
            assert recv_frame(sock)["ok"] is True
            send_frame(sock, request_to_wire(HealthRequest()))
            reply = reply_from_wire(recv_frame(sock))
            assert isinstance(reply, HealthReply)
            assert reply.healthy is True
            assert reply.uptime_seconds >= 0
            assert reply.pid > 0
            assert reply.shards["0"]["up"] is True


class TestHistogramPercentile:
    def test_percentile_bounds_and_edges(self):
        histogram = Histogram()
        assert histogram.percentile(50) is None
        for value in (1, 2, 3, 100, 1000):
            histogram.observe(value)
        assert histogram.percentile(100) == 1000
        assert histogram.percentile(1) == histogram.min
        p50 = histogram.percentile(50)
        assert histogram.min <= p50 <= histogram.max
        # Power-of-two buckets: the estimate is an upper bound on the
        # true percentile (3 lands in bucket 2, upper bound 3).
        assert p50 >= 3
