"""Tests for the workload generators (synthetic suite + paper CFGs)."""

import pytest

from repro.ir import verify_function, verify_program
from repro.ir.printer import format_program
from repro.workloads.paper_example import build_paper_example
from repro.workloads.pathological import (
    build_biased_treegion,
    build_linearized_treegion,
    build_wide_shallow_treegion,
)
from repro.workloads.specint import (
    BENCHMARK_NAMES,
    SPECINT95,
    build_benchmark,
    build_suite,
)
from repro.workloads.synthetic import SynthParams, generate_function


class TestSyntheticGenerator:
    def test_deterministic_per_seed(self):
        params = SynthParams(name="det", seed=42, target_blocks=60)
        a = generate_function(params)
        b = generate_function(params)
        from repro.ir.printer import format_function

        assert format_function(a) == format_function(b)

    def test_different_seeds_differ(self):
        from repro.ir.printer import format_function

        a = generate_function(SynthParams(name="x", seed=1, target_blocks=60))
        b = generate_function(SynthParams(name="x", seed=2, target_blocks=60))
        assert format_function(a) != format_function(b)

    def test_generated_ir_verifies(self):
        for seed in (1, 7, 99):
            fn = generate_function(
                SynthParams(name="v", seed=seed, target_blocks=80)
            )
            verify_function(fn)

    def test_flow_conservation(self):
        """Every non-entry block's weight equals its incoming edge flow,
        and out-flow equals block weight (up to RET sinks)."""
        fn = generate_function(SynthParams(name="flow", seed=5,
                                           target_blocks=100))
        for block in fn.cfg.blocks():
            if block is not fn.cfg.entry:
                inflow = sum(e.weight for e in block.in_edges)
                assert inflow == pytest.approx(block.weight, rel=1e-6,
                                               abs=1e-6)
            if block.out_edges:
                outflow = sum(e.weight for e in block.out_edges)
                assert outflow == pytest.approx(block.weight, rel=1e-6,
                                                abs=1e-6)

    def test_entry_count_respected(self):
        fn = generate_function(SynthParams(name="e", seed=3,
                                           entry_count=555.0))
        assert fn.cfg.entry.weight == 555.0

    def test_block_budget_is_soft_cap(self):
        fn = generate_function(SynthParams(name="b", seed=9,
                                           target_blocks=40, toplevel=50,
                                           depth=4))
        # The budget stops new constructs; a small overshoot from the
        # construct in flight is allowed.
        assert len(fn.cfg) <= 40 + 60

    def test_full_bias_produces_zero_weight_arms(self):
        fn = generate_function(SynthParams(name="bias", seed=11,
                                           target_blocks=120,
                                           full_bias_prob=1.0,
                                           loop_odds=0.0, switch_odds=0.0,
                                           chain_odds=0.0))
        zero_blocks = [b for b in fn.cfg.blocks() if b.weight == 0.0]
        assert zero_blocks, "fully biased branches must starve an arm"


class TestSuite:
    def test_all_eight_benchmarks(self):
        suite = build_suite()
        assert list(suite) == BENCHMARK_NAMES == list(SPECINT95)
        assert len(suite) == 8
        for name, program in suite.items():
            verify_program(program)
            assert program.entry_name == name

    def test_cache_returns_same_object(self):
        a = build_benchmark("compress")
        b = build_benchmark("compress")
        assert a is b
        c = build_benchmark("compress", use_cache=False)
        assert c is not a
        assert format_program(c) == format_program(a)


class TestPaperExample:
    def test_weights_match_figures(self):
        program = build_paper_example()
        fn = program.entry_function
        blocks = {b.name: b for b in fn.cfg.blocks()}
        assert blocks["bb1"].weight == 100.0
        assert blocks["bb3"].weight == 35.0
        assert blocks["bb4"].weight == 25.0
        assert blocks["bb8"].weight == 40.0

    def test_register_names_match_figures(self):
        from repro.ir import Opcode, RegClass, Register

        program = build_paper_example()
        fn = program.entry_function
        blocks = {b.name: b for b in fn.cfg.blocks()}
        r1 = Register(RegClass.GPR, 1)
        assert blocks["bb1"].ops[0].dest == r1
        r6 = Register(RegClass.GPR, 6)
        assert blocks["bb8"].ops[0].dest == r6
        assert blocks["bb5"].ops[0].dest == r6  # r6 = 0


class TestPathologicalShapes:
    def test_biased_single_hot_path(self):
        program = build_biased_treegion(depth=4, hot_weight=80.0)
        verify_program(program)
        fn = program.entry_function
        hot = [b for b in fn.cfg.blocks() if b.weight > 0]
        cold = [b for b in fn.cfg.blocks() if b.weight == 0]
        assert cold, "cold arms exist"
        # The hot path has full weight end to end.
        assert all(b.weight == 80.0 for b in hot)

    def test_wide_shallow_exit_count_vs_weight(self):
        from repro.core import form_treegions

        program = build_wide_shallow_treegion(fanout=8, hot_case=5)
        verify_program(program)
        fn = program.entry_function
        region = form_treegions(fn.cfg).region_of(fn.cfg.entry)
        blocks = {b.name: b for b in region.blocks}
        hot = blocks["dest5"]
        # The hot destination has the region's maximum weight but the
        # minimum exit count among destinations — Figure 9's property.
        even = blocks["dest4"]
        assert hot.weight > even.weight
        assert region.exit_count_below(hot) < region.exit_count_below(even)

    def test_wide_shallow_requires_odd_hot_case(self):
        with pytest.raises(ValueError):
            build_wide_shallow_treegion(hot_case=4)

    def test_linearized_single_path_bottom_exit(self):
        from repro.core import form_treegions

        program = build_linearized_treegion(length=5)
        verify_program(program)
        fn = program.entry_function
        region = form_treegions(fn.cfg).region_of(fn.cfg.entry)
        exits = region.exits()
        taken = [e for e in exits if e.weight > 0]
        assert len(taken) == 1
        # ...and it is the structurally deepest exit.
        depths = {id(e): region.depth(e.source) for e in exits}
        assert depths[id(taken[0])] == max(depths.values())
