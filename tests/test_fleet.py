"""The compile fleet: sharding, dedup, replica reads, fault recovery.

The fleet's contract extends the service's bit-identity guarantee with
fleet semantics: content-key routing is stable, identical in-flight
requests collapse onto one computation (so client retries are
idempotent by construction), killing one shard mid-batch drops nothing
— its keys are retried on the restarted shard while other shards never
notice — and resizing the fleet costs replica reads, not recomputes.
"""

from __future__ import annotations

import functools
import os
import threading
import time

import pytest

from repro.evaluation.engine import GridCell, evaluate_grid
from repro.obs import MetricsRegistry
from repro.serve import (
    CompileFleet,
    JobFailedError,
    JobRequest,
    KeyRouter,
    ServiceSaturatedError,
    request_key,
    result_to_payload,
)
from repro.serve.client import Client
from repro.serve.frontend import FrontendServer
from repro.serve.service import _service_worker
from repro.serve.soak import percentile, run_soak

_NO_SLEEP = lambda seconds: None  # noqa: E731 - retry backoff stub


def _grid():
    """8 cells spread over both shards of a 2-shard router (5/3)."""
    return [
        GridCell(bench, scheme, "4U", heuristic)
        for bench in ("compress", "go")
        for scheme in ("bb", "treegion")
        for heuristic in ("global_weight", "dep_height")
    ]


def _owners(cells, shards=2):
    router = KeyRouter(shards)
    return [router.shard_for(request_key(JobRequest(cell=cell)))
            for cell in cells]


def _gated_worker(gate_path, task):
    """Block until the test opens the gate (crosses the fork)."""
    while not os.path.exists(gate_path):
        time.sleep(0.01)
    return _service_worker(task)


def _fast_fleet(tmp_path, metrics=None, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("health_interval", 0.05)
    kwargs.setdefault("retry_backoff", 0.0)
    kwargs.setdefault("sleep", _NO_SLEEP)
    if metrics is not None:
        kwargs.setdefault("metrics", metrics)
    return CompileFleet(**kwargs)


def _wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting: {message}"
        time.sleep(0.01)


class TestIdentityAndRouting:
    def test_fleet_matches_direct_byte_for_byte(self, tmp_path):
        cells = _grid()
        direct = evaluate_grid(cells)
        with _fast_fleet(tmp_path) as fleet:
            served = fleet.evaluate(cells)
            stats = fleet.stats()
        assert served == direct
        for mine, reference in zip(served, direct):
            assert result_to_payload("k", mine) == \
                result_to_payload("k", reference)
        # Content keys spread the grid over both shards' stores.
        entries = [shard["service"]["store"]["entries"]
                   for shard in stats["shards"]]
        assert all(count > 0 for count in entries)
        assert sum(entries) == len(cells)

    def test_routing_is_a_pure_function_of_the_key(self):
        cells = _grid()
        assert _owners(cells) == _owners(cells)
        assert set(_owners(cells)) == {0, 1}
        with pytest.raises(ValueError):
            KeyRouter(0)


class TestHotTierAndIdempotency:
    def test_warm_resubmit_is_a_hot_hit_not_a_dispatch(self, tmp_path):
        registry = MetricsRegistry()
        cell = GridCell("compress", "treegion", "4U", "global_weight")
        with _fast_fleet(tmp_path, metrics=registry) as fleet:
            cold = fleet.submit(JobRequest(cell=cell))
            cold.result(120.0)
            assert not cold.cached
            warm = fleet.submit(JobRequest(cell=cell))
            assert warm.done and warm.cached and warm.source == "hot"
            assert warm.result(0.0) == cold.result(0.0)
        assert registry.counters["fleet.hot_hits"] == 1
        assert registry.counters["serve.jobs.submitted"] == 1

    def test_inflight_duplicates_share_one_handle(self, tmp_path):
        registry = MetricsRegistry()
        gate = str(tmp_path / "gate")
        cell = GridCell("compress", "treegion", "4U", "global_weight")
        fleet = _fast_fleet(
            tmp_path, metrics=registry,
            service_kwargs={
                "worker": functools.partial(_gated_worker, gate),
                "sleep": _NO_SLEEP,
            },
        )
        try:
            first = fleet.submit(JobRequest(cell=cell))
            # A client retry of an accepted request: same content key,
            # same handle, no second dispatch.
            second = fleet.submit(JobRequest(cell=cell))
            assert second is first
            with open(gate, "w") as handle:
                handle.write("open\n")
            assert first.result(120.0) == evaluate_grid([cell])[0]
        finally:
            fleet.close()
        assert registry.counters["fleet.deduped"] == 1
        assert registry.counters["serve.jobs.submitted"] == 1

    def test_saturated_shard_rejects_without_accepting(self, tmp_path):
        registry = MetricsRegistry()
        gate = str(tmp_path / "gate")
        cells = _grid()
        owners = _owners(cells)
        same_owner = [cell for cell, owner in zip(cells, owners)
                      if owner == owners[0]]
        assert len(same_owner) >= 3
        fleet = _fast_fleet(
            tmp_path, metrics=registry, max_pending=1, batch_size=1,
            service_kwargs={
                "worker": functools.partial(_gated_worker, gate),
                "sleep": _NO_SLEEP,
            },
        )
        try:
            # One job gets dispatched, one fills the intake queue; the
            # next same-shard submit must bounce with backpressure.
            handles = [fleet.submit(JobRequest(cell=same_owner[0]))]
            _wait_for(
                lambda: registry.counters.get("serve.dispatches", 0) >= 1,
                message="first job dispatched",
            )
            handles.append(fleet.submit(JobRequest(cell=same_owner[1])))
            with pytest.raises(ServiceSaturatedError):
                fleet.submit(JobRequest(cell=same_owner[2]))
            with open(gate, "w") as handle:
                handle.write("open\n")
            for handle in handles:
                handle.result(120.0)
        finally:
            fleet.close()
        # The rejected request was never accepted anywhere.
        assert registry.counters["serve.jobs.rejected"] >= 1


class TestShardFailure:
    def test_kill_one_shard_mid_batch_drops_nothing(self, tmp_path):
        registry = MetricsRegistry()
        gate = str(tmp_path / "gate")
        cells = _grid()
        owners = _owners(cells)
        assert set(owners) == {0, 1}
        direct = evaluate_grid(cells)
        fleet = _fast_fleet(
            tmp_path, metrics=registry, batch_size=1,
            service_kwargs={
                "worker": functools.partial(_gated_worker, gate),
                "sleep": _NO_SLEEP,
            },
        )
        try:
            handles = [fleet.submit(JobRequest(cell=cell))
                       for cell in cells]
            # Both shards have one job blocked mid-dispatch and the
            # rest queued behind it.
            _wait_for(
                lambda: registry.counters.get("serve.dispatches", 0) >= 2,
                message="both shards dispatching",
            )
            fleet.kill_shard(0, timeout=0.5)
            with open(gate, "w") as handle:
                handle.write("open\n")
            results = [handle.result(180.0) for handle in handles]
            assert results == direct
            health = fleet.health()
        finally:
            fleet.close()
        # The dead shard was restarted and its queued keys re-run there;
        # the surviving shard never noticed.
        assert registry.counters["fleet.shard_kills"] == 1
        assert registry.counters.get("fleet.shard_retries", 0) >= 1
        assert health["shards"]["0"]["generation"] >= 1
        assert health["shards"]["1"]["generation"] == 0

    def test_deterministic_failure_is_not_retried_across_shards(
            self, tmp_path):
        registry = MetricsRegistry()
        fleet = _fast_fleet(
            tmp_path, metrics=registry, retries=0,
            service_kwargs={"worker": _always_failing_worker,
                            "sleep": _NO_SLEEP},
        )
        try:
            handle = fleet.submit(JobRequest(
                cell=GridCell("compress", "treegion", "4U",
                              "global_weight")))
            with pytest.raises(JobFailedError) as failure:
                handle.result(60.0)
            assert not failure.value.retryable
        finally:
            fleet.close(drain=False)
        assert "fleet.shard_retries" not in registry.counters


def _always_failing_worker(task):
    raise ValueError("deterministically unschedulable")


class TestFleetResize:
    def test_resize_reads_replicas_instead_of_recomputing(self, tmp_path):
        cells = _grid()
        with _fast_fleet(tmp_path, shards=1) as small:
            first = small.evaluate(cells)
        registry = MetricsRegistry()
        # Same cache root, more shards: ~half the keyspace changes
        # owner; the new owners adopt from the old shard's store.
        with _fast_fleet(tmp_path, shards=2, metrics=registry) as grown:
            second = grown.evaluate(cells)
        assert second == first
        assert registry.counters.get("serve.dispatches", 0) == 0
        assert registry.counters["fleet.replica_reads"] >= 1
        assert registry.counters["serve.jobs.cache_hits"] == len(cells)


class TestServedRetryIdempotency:
    def test_client_deadline_retry_never_double_computes(self, tmp_path):
        registry = MetricsRegistry()
        gate = str(tmp_path / "gate")
        cell = GridCell("compress", "treegion", "4U", "global_weight")
        fleet = _fast_fleet(
            tmp_path, metrics=registry,
            service_kwargs={
                "worker": functools.partial(_gated_worker, gate),
                "sleep": _NO_SLEEP,
            },
        )
        server = FrontendServer(fleet, "tcp://127.0.0.1:0",
                                metrics=registry)
        endpoint = server.start()
        try:
            outcome = {}

            def submit():
                with Client(endpoint, retries=100,
                            retry_backoff=0.05) as client:
                    # Each 0.2s deadline expires while the job is
                    # gated; every retry dedups onto the in-flight
                    # computation instead of resubmitting it.
                    outcome["reply"] = client.submit(cell, timeout=0.2)

            thread = threading.Thread(target=submit, daemon=True)
            thread.start()
            _wait_for(
                lambda: registry.counters.get(
                    "frontend.request_timeouts", 0) >= 2,
                message="client retrying after deadline timeouts",
            )
            with open(gate, "w") as handle:
                handle.write("open\n")
            thread.join(120.0)
            assert not thread.is_alive()
        finally:
            server.stop()
            fleet.close()
        reply = outcome["reply"]
        assert reply.result == result_to_payload(
            reply.result["key"], evaluate_grid([cell])[0])
        assert registry.counters["serve.jobs.submitted"] == 1
        assert registry.counters["fleet.deduped"] >= 1


class TestSoakHarness:
    def test_exact_percentiles(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 50) == 7.0

    def test_soak_drives_warm_traffic_and_reports(self, tmp_path):
        registry = MetricsRegistry()
        cells = _grid()[:4]
        fleet = _fast_fleet(tmp_path, metrics=registry)
        server = FrontendServer(fleet, "tcp://127.0.0.1:0")
        endpoint = server.start()
        try:
            report = run_soak(endpoint, cells, clients=6, requests=24,
                              metrics=registry)
        finally:
            server.stop()
            fleet.close()
        assert report.completed == 24 and report.dropped == 0
        assert not report.errors
        summary = report.as_dict()
        # Idempotency across the whole soak: every distinct key was
        # computed exactly once (concurrent duplicates ride along).
        assert registry.counters["serve.jobs.submitted"] == len(cells)
        assert summary["warm_latency"]["count"] >= 1
        assert (summary["warm_latency"]["count"]
                + summary["cold_latency"]["count"]) == 24
        assert summary["latency"]["p99"] >= summary["latency"]["p50"]
        assert set(summary["sources"]) <= {"computed", "store", "hot"}
        # Byte-identity through the soak path, per request index.
        direct = evaluate_grid(cells)
        for index, payload in report.payloads.items():
            expected = direct[index % len(cells)]
            assert payload == result_to_payload(payload["key"], expected)
        histogram = registry.histograms["soak.latency_us"]
        assert histogram.count == 24
        assert histogram.percentile(99) >= histogram.percentile(50)

    def test_soak_survives_a_shard_kill(self, tmp_path):
        cells = _grid()
        fleet = _fast_fleet(tmp_path)
        server = FrontendServer(fleet, "tcp://127.0.0.1:0")
        endpoint = server.start()
        killed = threading.Event()

        def chaos(index):
            if index == len(cells) and not killed.is_set():
                killed.set()
                fleet.kill_shard(0, timeout=0.5)

        try:
            report = run_soak(endpoint, cells, clients=8,
                              requests=3 * len(cells), on_request=chaos)
        finally:
            server.stop()
            fleet.close()
        assert killed.is_set()
        assert report.dropped == 0 and not report.errors
        direct = evaluate_grid(cells)
        for index, payload in report.payloads.items():
            expected = direct[index % len(cells)]
            assert payload == result_to_payload(payload["key"], expected)
