"""Shared CFG construction helpers for the test suite."""

from __future__ import annotations

from repro.ir import (
    CompareCond,
    Function,
    IRBuilder,
    Program,
    RegClass,
    Register,
)


def diamond_function(name: str = "diamond") -> Function:
    """entry -> (then | else) -> join -> ret, branch on param > 0.

    The classic if/else shape: ``join`` is a merge point, so treegion
    formation must stop there.
    """
    fn = Function(name, [Register(RegClass.GPR, 0)])
    fn.regs.reserve(Register(RegClass.GPR, 0))
    b = IRBuilder(fn)
    entry = b.block("entry")
    then_bb = b.block("then")
    else_bb = b.block("else")
    join = b.block("join")

    b.at(entry)
    t = b.mov(0)
    e = b.mov(0)
    p = b.cmpp(CompareCond.GT, fn.params[0], 0)
    b.br_true(p, then_bb, else_bb)

    b.at(then_bb)
    b.mov(1, dest=t)
    b.jump(join)

    b.at(else_bb)
    b.mov(2, dest=e)
    b.fallthrough(join)

    b.at(join)
    b.add(t, e)
    b.ret(0)
    return fn


def straight_line_function(name: str = "line", n_blocks: int = 3) -> Function:
    """A chain of fallthrough blocks ending in ret."""
    fn = Function(name)
    b = IRBuilder(fn)
    blocks = [b.block(f"b{i}") for i in range(n_blocks)]
    for i, block in enumerate(blocks):
        b.at(block)
        b.mov(i)
        if i + 1 < n_blocks:
            b.fallthrough(blocks[i + 1])
        else:
            b.ret(0)
    return fn


def loop_function(name: str = "loop") -> Function:
    """entry -> header <-> body, header -> exit.  Header is a merge point."""
    fn = Function(name, [Register(RegClass.GPR, 0)])
    fn.regs.reserve(Register(RegClass.GPR, 0))
    b = IRBuilder(fn)
    entry = b.block("entry")
    header = b.block("header")
    body = b.block("body")
    exit_bb = b.block("exit")

    b.at(entry)
    i = b.mov(0)
    b.fallthrough(header)

    b.at(header)
    p = b.cmpp(CompareCond.LT, i, fn.params[0])
    b.br_true(p, body, exit_bb)

    b.at(body)
    b.add(i, 1, dest=i)
    b.jump(header)

    b.at(exit_bb)
    b.ret(i)
    return fn


def switch_function(name: str = "sw", n_cases: int = 4) -> Function:
    """entry switches to n case blocks which all merge at a join block."""
    fn = Function(name, [Register(RegClass.GPR, 0)])
    fn.regs.reserve(Register(RegClass.GPR, 0))
    b = IRBuilder(fn)
    entry = b.block("entry")
    cases = [b.block(f"case{i}") for i in range(n_cases)]
    default = b.block("default")
    join = b.block("join")

    b.at(entry)
    b.switch(fn.params[0], [(i, blk) for i, blk in enumerate(cases)], default)

    for i, blk in enumerate(cases):
        b.at(blk)
        b.mov(i * 10)
        b.jump(join)

    b.at(default)
    b.mov(-1)
    b.fallthrough(join)

    b.at(join)
    b.ret(0)
    return fn


def program_with(fn: Function) -> Program:
    program = Program(entry=fn.name)
    program.add_function(fn)
    return program
