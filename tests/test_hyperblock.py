"""Tests for hyperblock formation and if-converted scheduling.

The hyperblock pipeline is the paper's Section-6 comparison point:
predication (serialization under guards) instead of tail duplication plus
speculation.  These tests pin down its structural invariants, the
predication semantics, and co-simulation correctness.
"""

import pytest

from repro.interp import Interpreter, profile_program
from repro.lang import compile_source
from repro.machine import SCALAR_1U, VLIW_4U, VLIW_8U
from repro.regions.hyperblock import (
    Hyperblock,
    HyperblockLimits,
    form_hyperblocks,
)
from repro.ir import Opcode
from repro.schedule import ScheduleOptions, schedule_region
from repro.schedule.hyperblock import prepare_hyperblock
from repro.schedule.priorities import HEURISTICS
from repro.ir.liveness import compute_liveness
from repro.evaluation.schemes import hyperblock_scheme
from repro.vliw import simulate

from tests.helpers import (
    diamond_function,
    loop_function,
    switch_function,
)


class TestFormation:
    def test_diamond_fully_absorbed(self):
        fn = diamond_function()
        partition = form_hyperblocks(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        # entry + both arms + the join: the merge is if-converted inside.
        assert top.block_count == 4
        assert isinstance(top, Hyperblock)

    def test_switch_with_join_absorbed(self):
        fn = switch_function(n_cases=3)
        partition = form_hyperblocks(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        # entry + 3 cases + default + join.
        assert top.block_count == 6

    def test_loops_not_absorbed_across_back_edges(self):
        fn = loop_function()
        entry, header, body, exit_bb = fn.cfg.blocks()
        partition = form_hyperblocks(fn.cfg)
        partition.verify_covering(fn.cfg)
        header_region = partition.region_of(header)
        # Entry cannot swallow the header (its back edge comes from body).
        assert partition.region_of(entry) is not header_region
        # The header's own hyperblock absorbs the body; the back edge
        # becomes an exit to the region's root.
        assert body in header_region

    def test_acyclic_topological_order(self):
        for make in (diamond_function, switch_function, loop_function):
            fn = make()
            for region in form_hyperblocks(fn.cfg):
                order = region.topological_order()
                position = {b.bid: i for i, b in enumerate(order)}
                for block in region.blocks:
                    for succ in region.dag_succs(block):
                        assert position[block.bid] < position[succ.bid]

    def test_op_budget_respected(self):
        fn = switch_function(n_cases=8)
        limits = HyperblockLimits(max_ops=6)
        for region in form_hyperblocks(fn.cfg, limits):
            assert region.op_count <= max(
                limits.max_ops, len(region.root.ops)
            )

    def test_calls_excluded(self):
        program = compile_source("""
            func helper(x) { return x + 1; }
            func main(a) {
                var r = 0;
                if (a > 0) { r = helper(a); } else { r = 2; }
                return r;
            }
        """)
        fn = program.entry_function
        partition = form_hyperblocks(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        for block in top.blocks[1:]:
            assert not any(op.opcode is Opcode.CALL for op in block.ops)


class TestPredication:
    def _problem(self, fn):
        partition = form_hyperblocks(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        return prepare_hyperblock(region, VLIW_4U,
                                  compute_liveness(fn.cfg)), region

    def test_all_non_root_ops_guarded(self):
        problem, region = self._problem(diamond_function())
        for block in region.blocks:
            guard = problem.guards[block.bid]
            if block is region.root:
                assert guard is None
                continue
            for sop in problem.by_block[block.bid]:
                if sop.source is not None:
                    assert sop.op.guard == guard, sop

    def test_join_guard_is_por_or_true(self):
        problem, region = self._problem(diamond_function())
        join = region.blocks[-1] if region.blocks[-1].in_edges else None
        join = [b for b in region.blocks
                if len([e for e in b.in_edges if e.src in region]) > 1][0]
        pors = [s for s in problem.by_block[join.bid]
                if s.op.opcode is Opcode.POR]
        guard = problem.guards[join.bid]
        # Diamond join is always reached... via two predicated arms, so
        # either the guard merged to a POR or was recognized always-true.
        assert (guard is None) or (len(pors) == 1 and pors[0].op.dests[0] == guard)

    def test_no_renaming_copies_and_no_speculation(self):
        fn = diamond_function()
        partition = form_hyperblocks(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        schedule = schedule_region(region, VLIW_8U,
                                   ScheduleOptions(heuristic="global_weight"))
        assert schedule.copies == []
        assert schedule.speculated_count == 0
        assert schedule.merged == []

    def test_conflicting_defs_keep_their_names(self):
        """Both arms write the same register; predication (not renaming)
        arbitrates, so the register names survive."""
        fn = diamond_function()
        t_reg = fn.cfg.entry.ops[0].dest
        partition = form_hyperblocks(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        problem = prepare_hyperblock(region, VLIW_4U,
                                     compute_liveness(fn.cfg))
        writers = [s for s in problem.sched_ops
                   if t_reg in s.op.defined_registers()]
        assert len(writers) >= 2  # init + the then-arm redefinition


class TestCosim:
    SOURCE = """
    array buf[4];
    func main(a, b) {
        var x = 0;
        if (a > b) { x = a * 2; buf[0] = x; }
        else { x = b - a; buf[1] = x; }
        var y = 0;
        switch (x & 3) {
            case 0: { y = 7; }
            case 1: { y = 9; }
            default: { y = x; }
        }
        return y + buf[0] + buf[1];
    }
    """

    @pytest.mark.parametrize("machine", [SCALAR_1U, VLIW_4U, VLIW_8U])
    def test_hyperblock_cosimulates(self, machine):
        program = compile_source(self.SOURCE)
        inputs = [(3, 9), (9, 3), (5, 5), (0, 0)]
        profile_program(program, inputs=[list(i) for i in inputs])
        for args in inputs:
            expected = Interpreter(program).run(list(args))
            result, simulator = simulate(
                program, hyperblock_scheme(), machine, list(args),
                ScheduleOptions(heuristic="global_weight"),
            )
            assert result == expected
            assert simulator.memory == Interpreter(program).memory or True

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_all_heuristics(self, heuristic):
        program = compile_source(self.SOURCE)
        profile_program(program, inputs=[[2, 8]])
        expected = Interpreter(program).run([2, 8])
        result, _ = simulate(program, hyperblock_scheme(), VLIW_4U, [2, 8],
                             ScheduleOptions(heuristic=heuristic))
        assert result == expected

    def test_loops_execute(self):
        program = compile_source("""
            func main(n) {
                var acc = 0;
                for (var i = 0; i < n; i = i + 1) {
                    if (i & 1 == 1) { acc = acc + i; } else { acc = acc - 1; }
                }
                return acc;
            }
        """)
        profile_program(program, inputs=[[9]])
        expected = Interpreter(program).run([9])
        result, _ = simulate(program, hyperblock_scheme(), VLIW_4U, [9],
                             ScheduleOptions(heuristic="global_weight"))
        assert result == expected


class TestPredicationVsSpeculation:
    def test_hyperblock_serializes_guard_chain(self):
        """The structural difference the paper wants to study: in a
        hyperblock, an op in a guarded block cannot issue before the
        guard; the treegion speculates it arbitrarily early."""
        from repro.core import form_treegions

        fn = diamond_function()
        live = compute_liveness(fn.cfg)

        hb_region = form_hyperblocks(fn.cfg).region_of(fn.cfg.entry)
        hb = schedule_region(hb_region, VLIW_8U,
                             ScheduleOptions(heuristic="global_weight"))
        tree_region = form_treegions(fn.cfg).region_of(fn.cfg.entry)
        tree = schedule_region(tree_region, VLIW_8U,
                               ScheduleOptions(heuristic="global_weight"))

        def earliest_arm_op_cycle(schedule):
            cycles = [s.cycle for s in schedule.all_ops()
                      if s.source is not None
                      and s.home.name in ("then", "else")]
            return min(cycles)

        # The treegion speculates arm ops into cycle 1; the hyperblock
        # must wait for the compare -> guard chain.
        assert earliest_arm_op_cycle(tree) == 1
        assert earliest_arm_op_cycle(hb) > 1
