"""The structured fleet event log (:mod:`repro.serve.events`).

Rotation keeps every retained file intact JSONL and
:func:`read_events` replays backups oldest-first; the fleet emits the
lifecycle events DESIGN.md §14 lists (shard start/kill/restart, request
retries, fleet close) without ever letting a logging failure into the
serving path.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.events import (
    NULL_EVENTS,
    EventLog,
    iter_events,
    read_events,
)

from tests.test_fleet import _fast_fleet, _wait_for


class FakeClock:
    def __init__(self):
        self.now = 50.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestEventLog:
    def test_emit_appends_flushed_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), clock=FakeClock())
        log.emit("shard.start", shard=0, generation=0)
        log.emit("hot.evict", evicted=3)
        # Records are readable before close — emit flushes.
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        log.close()
        assert [r["event"] for r in rows] == ["shard.start", "hot.evict"]
        assert rows[0]["shard"] == 0 and rows[0]["ts"] == 51.0
        assert all("pid" in r for r in rows)

    def test_unserializable_fields_degrade_not_raise(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        # default=str covers most objects; tuple dict keys defeat even
        # that, and the log must still record the event name.
        log.emit("weird", payload={(1, 2): "x"})
        log.close()
        (row,) = read_events(str(path))
        assert row["event"] == "weird"
        assert row["error"] == "unserializable fields"

    def test_rotation_shifts_backups_and_drops_oldest(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), max_bytes=120, backups=2)
        for index in range(12):
            log.emit("tick", index=index)
        log.close()
        assert path.exists()
        assert (tmp_path / "events.jsonl.1").exists()
        assert (tmp_path / "events.jsonl.2").exists()
        assert not (tmp_path / "events.jsonl.3").exists()
        # Every retained file is intact JSONL and the merged view is
        # oldest-first with no duplicates.
        merged = read_events(str(path))
        indices = [row["index"] for row in merged]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        assert indices[-1] == 11  # the live tail is always retained

    def test_zero_backups_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), max_bytes=100, backups=0)
        for index in range(10):
            log.emit("tick", index=index)
        log.close()
        assert not (tmp_path / "events.jsonl.1").exists()
        assert read_events(str(path))  # live file still intact

    def test_reader_skips_torn_lines_and_missing_files(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert read_events(str(path)) == []
        log = EventLog(str(path))
        log.emit("ok")
        log.close()
        with open(path, "a") as handle:
            handle.write('{"event": "torn')
        assert [r["event"] for r in iter_events(str(path))] == ["ok"]

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(str(tmp_path / "e.jsonl"), max_bytes=0)

    def test_null_log_is_silent(self):
        NULL_EVENTS.emit("anything", n=1)
        NULL_EVENTS.close()


class TestFleetLifecycleEvents:
    def test_fleet_emits_start_kill_restart_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        fleet = _fast_fleet(tmp_path, events=log)
        try:
            fleet.kill_shard(0, timeout=0.5)
            _wait_for(
                lambda: fleet.health()["shards"]["0"]["generation"] >= 1,
                message="shard 0 restarted",
            )
        finally:
            fleet.close()
            log.close()
        events = [row["event"] for row in read_events(str(path))]
        assert events.count("shard.start") == 2
        assert "fleet.start" in events
        assert "shard.kill" in events
        assert "shard.restart" in events
        assert events[-1] == "fleet.close"
        restart = next(row for row in read_events(str(path))
                       if row["event"] == "shard.restart")
        assert restart["shard"] == 0 and restart["generation"] >= 1
