"""The two-tier region memo (``repro.schedule.memo``).

The memo's contract is bit-identity with the direct pipeline — results
*and* deterministic pipeline counters — across cold, warm, and
disk-revived service.  (The validation oracle re-checks the same
contract against randomly generated programs;
``check_region_memo_identity`` in ``repro.validate.oracle``.)
"""

import tempfile

import pytest

from repro.core import form_treegions
from repro.evaluation.engine import GridCell, evaluate_grid
from repro.ir.analysis_cache import liveness_of
from repro.machine import VLIW_4U, VLIW_8U
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.schedule import ScheduleOptions, schedule_region
from repro.schedule.memo import RegionMemo, RegionSummary, global_memo
from repro.schedule.priorities import HEURISTICS
from repro.serve.store import ArtifactStore
from repro.workloads.paper_example import build_paper_example

from tests.helpers import diamond_function


def _regions(fn):
    return list(form_treegions(fn.cfg)), liveness_of(fn.cfg)


def _summary(schedule):
    return (schedule.weighted_time, schedule.length, schedule.copy_count,
            schedule.merged_count, schedule.speculated_count)


class TestIdentity:
    def test_cold_and_warm_match_direct(self):
        fn = build_paper_example().entry_function
        regions, liveness = _regions(fn)
        memo = RegionMemo()
        for machine in (VLIW_4U, VLIW_8U):
            for heuristic in HEURISTICS:
                options = ScheduleOptions(heuristic=heuristic)
                for region in regions:
                    ref = _summary(schedule_region(
                        region, machine, options, liveness))
                    cold = memo.schedule(region, machine, options, liveness)
                    warm = memo.schedule(region, machine, options, liveness)
                    assert _summary(cold) == ref
                    assert _summary(warm) == ref
                    assert isinstance(warm, RegionSummary)
        stats = memo.stats()
        assert stats["hits"] >= stats["misses"] > 0

    def test_dominator_parallelism_memoizes(self):
        fn = build_paper_example().entry_function
        regions, liveness = _regions(fn)
        memo = RegionMemo()
        options = ScheduleOptions(heuristic="global_weight",
                                  dominator_parallelism=True)
        for region in regions:
            ref = _summary(schedule_region(
                region, VLIW_8U, options, liveness))
            assert _summary(memo.schedule(
                region, VLIW_8U, options, liveness)) == ref
            assert _summary(memo.schedule(
                region, VLIW_8U, options, liveness)) == ref
        assert memo.stats()["hits"] == len(regions)

    def test_counter_replay_is_lossless(self):
        fn = build_paper_example().entry_function
        regions, liveness = _regions(fn)
        options = ScheduleOptions(heuristic="dep_height")

        def counters(run):
            registry = MetricsRegistry()
            with metrics_scope(registry):
                run()
            return registry.deterministic_snapshot()

        direct = counters(lambda: [
            schedule_region(r, VLIW_4U, options, liveness) for r in regions
        ])
        memo = RegionMemo()
        cold = counters(lambda: [
            memo.schedule(r, VLIW_4U, options, liveness) for r in regions
        ])
        warm = counters(lambda: [
            memo.schedule(r, VLIW_4U, options, liveness) for r in regions
        ])
        assert cold == direct
        assert warm == direct


class TestTierOneSharing:
    def test_ddg_shared_across_same_latency_machines(self):
        fn = diamond_function()
        regions, liveness = _regions(fn)
        region = regions[0]
        memo = RegionMemo()
        options = ScheduleOptions()
        memo.schedule(region, VLIW_4U, options, liveness)
        memo.schedule(region, VLIW_8U, options, liveness)
        # One prep and one DDG build serve both machines: prep reads
        # only use_btr, the DDG only the latency table.
        assert len(memo._problems) == 1
        assert len(memo._ddgs) == 1

    def test_heuristic_sweep_shares_problem_and_ddg(self):
        fn = diamond_function()
        regions, liveness = _regions(fn)
        region = regions[0]
        memo = RegionMemo()
        for heuristic in HEURISTICS:
            memo.schedule(region, VLIW_4U,
                          ScheduleOptions(heuristic=heuristic), liveness)
        assert len(memo._problems) == 1
        assert len(memo._ddgs) == 1
        assert memo.stats()["misses"] == len(HEURISTICS)

    def test_begin_group_clears_tier_one_only(self):
        fn = diamond_function()
        regions, liveness = _regions(fn)
        memo = RegionMemo()
        memo.schedule(regions[0], VLIW_4U, ScheduleOptions(), liveness)
        memo.begin_group()
        assert not memo._problems and not memo._ddgs
        assert memo.stats()["entries"] > 0  # tier 2 is content-addressed


class TestStorePersistence:
    def test_fresh_memo_revives_from_disk(self):
        fn = build_paper_example().entry_function
        regions, liveness = _regions(fn)
        options = ScheduleOptions(heuristic="global_weight")
        reference = [
            _summary(schedule_region(r, VLIW_4U, options, liveness))
            for r in regions
        ]
        with tempfile.TemporaryDirectory(prefix="repro-memo-") as tmp:
            seeding = RegionMemo(store=ArtifactStore(tmp))
            for region in regions:
                seeding.schedule(region, VLIW_4U, options, liveness)
            seeding.store.sync()  # region writes defer index maintenance

            revived = RegionMemo(store=ArtifactStore(tmp))
            served = [
                _summary(revived.schedule(region, VLIW_4U, options,
                                          liveness))
                for region in regions
            ]
        assert served == reference
        stats = revived.stats()
        assert stats["store_hits"] == len(regions)
        assert stats["misses"] == 0

    def test_lru_bound_respected(self):
        fn = build_paper_example().entry_function
        regions, liveness = _regions(fn)
        memo = RegionMemo(max_entries=1)
        for heuristic in HEURISTICS:
            for region in regions:
                memo.schedule(region, VLIW_4U,
                              ScheduleOptions(heuristic=heuristic), liveness)
        stats = memo.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0


class TestBypasses:
    def test_certify_bypasses(self):
        fn = diamond_function()
        regions, liveness = _regions(fn)
        memo = RegionMemo()
        schedule = memo.schedule(regions[0], VLIW_4U,
                                 ScheduleOptions(certify=True), liveness)
        assert memo.stats()["bypasses"] == 1
        assert memo.stats()["misses"] == 0
        assert hasattr(schedule, "cycles")  # the full schedule object

    def test_nondefault_max_cycles_bypasses(self):
        fn = diamond_function()
        regions, liveness = _regions(fn)
        memo = RegionMemo()
        memo.schedule(regions[0], VLIW_4U,
                      ScheduleOptions(max_cycles=123456), liveness)
        assert memo.stats()["bypasses"] == 1


class TestEngineWiring:
    GRID = [
        GridCell("compress", scheme, machine, heuristic)
        for scheme in ("bb", "treegion")
        for machine in ("4U", "8U")
        for heuristic in ("dep_height", "global_weight")
    ]

    def test_grid_records_region_gauges(self):
        metrics = MetricsRegistry()
        evaluate_grid(self.GRID, jobs=1, metrics=metrics,
                      region_memo=RegionMemo())
        gauges = metrics.snapshot()["gauges"]
        for name in ("cache.region.hits", "cache.region.misses",
                     "cache.region.bytes"):
            assert name in gauges, name
        assert gauges["cache.region.misses"] > 0
        assert gauges["cache.region.bytes"] > 0

    def test_gauges_outside_determinism_contract(self):
        metrics = MetricsRegistry()
        evaluate_grid(self.GRID, jobs=1, metrics=metrics,
                      region_memo=RegionMemo())
        assert "gauges" not in metrics.deterministic_snapshot()

    def test_region_memo_false_disables(self):
        metrics = MetricsRegistry()
        evaluate_grid(self.GRID, jobs=1, metrics=metrics, region_memo=False)
        assert "cache.region.hits" not in metrics.snapshot()["gauges"]

    def test_parallel_grid_merges_memo_gauges(self):
        metrics = MetricsRegistry()
        evaluate_grid(self.GRID, jobs=2, metrics=metrics)
        gauges = metrics.snapshot()["gauges"]
        assert "cache.region.misses" in gauges

    def test_global_memo_is_default(self):
        before = global_memo().stats()
        evaluate_grid(self.GRID[:2], jobs=1)
        after = global_memo().stats()
        assert (after["hits"] + after["misses"]
                > before["hits"] + before["misses"])
