"""Tests for basic-block, SLR, and treegion formation (Figures 1-2)."""

import pytest

from repro.core import Treegion, form_treegions
from repro.ir import CompareCond, Function, IRBuilder
from repro.regions import (
    form_basic_block_regions,
    form_slrs,
)
from repro.regions.absorb import region_saplings

from tests.helpers import (
    diamond_function,
    loop_function,
    straight_line_function,
    switch_function,
)


def build_figure1_like(weight_left: float = 35, weight_mid: float = 25,
                       weight_right: float = 40) -> Function:
    """A CFG shaped like the paper's Figure 1 top region.

    bb1 -> {bb2, bb8}; bb2 -> {bb3, bb4}; bb3,bb4 -> bb5(merge);
    bb8 -> bb9; bb5 -> bb9(merge); bb9 -> ret.
    """
    fn = Function("fig1")
    b = IRBuilder(fn)
    bb1, bb2, bb3, bb4, bb5, bb8, bb9 = (b.block(f"bb{i}") for i in
                                         (1, 2, 3, 4, 5, 8, 9))
    b.at(bb1)
    r1, r2 = b.ld(0, 0), b.ld(1, 0)
    p1 = b.cmpp(CompareCond.GT, r1, r2)
    b.br_true(p1, bb8, bb2)

    b.at(bb2)
    r3 = b.add(r1, r2)
    p3 = b.cmpp(CompareCond.LT, r3, 100)
    b.br_true(p3, bb4, bb3)

    b.at(bb3)
    b.mov(1)
    b.mov(2)
    b.jump(bb5)

    b.at(bb4)
    b.mov(3)
    b.mov(4)
    b.jump(bb5)

    b.at(bb5)
    b.mov(0)
    b.jump(bb9)

    b.at(bb8)
    b.mov(5)
    b.jump(bb9)

    b.at(bb9)
    b.ret(0)

    # Attach the paper's profile weights.
    bb1.weight = weight_left + weight_mid + weight_right
    bb2.weight = weight_left + weight_mid
    bb3.weight = weight_left
    bb4.weight = weight_mid
    bb5.weight = weight_left + weight_mid
    bb8.weight = weight_right
    bb9.weight = bb1.weight
    bb1.taken_edge.weight = weight_right
    bb1.fallthrough_edge.weight = weight_left + weight_mid
    bb2.taken_edge.weight = weight_mid
    bb2.fallthrough_edge.weight = weight_left
    bb3.taken_edge.weight = weight_left
    bb4.taken_edge.weight = weight_mid
    bb5.taken_edge.weight = weight_left + weight_mid
    bb8.taken_edge.weight = weight_right
    return fn


class TestBasicBlockRegions:
    def test_one_region_per_block(self):
        fn = diamond_function()
        partition = form_basic_block_regions(fn.cfg)
        assert len(partition) == len(fn.cfg)
        for region in partition:
            assert region.block_count == 1
            assert region.path_count == 1


class TestTreegionFormation:
    def test_figure1_top_treegion(self):
        fn = build_figure1_like()
        partition = form_treegions(fn.cfg)
        blocks = {b.name: b for b in fn.cfg.blocks()}
        top = partition.region_of(blocks["bb1"])
        # The top treegion is {bb1, bb2, bb3, bb4, bb8}: bb5 and bb9 are
        # merge points, exactly as in Figure 1.
        assert {b.name for b in top.blocks} == {"bb1", "bb2", "bb3", "bb4", "bb8"}
        assert partition.region_of(blocks["bb5"]) is not top
        assert partition.region_of(blocks["bb9"]) is not top
        # Three root-to-leaf paths.
        assert top.path_count == 3
        # Saplings of the top treegion are the merge points below it.
        assert {b.name for b in region_saplings(top)} == {"bb5", "bb9"}

    def test_every_block_in_exactly_one_treegion(self):
        for fn in (diamond_function(), loop_function(), switch_function(),
                   straight_line_function(), build_figure1_like()):
            partition = form_treegions(fn.cfg)
            partition.verify_covering(fn.cfg)
            seen = set()
            for region in partition:
                for block in region.blocks:
                    assert block.bid not in seen
                    seen.add(block.bid)

    def test_treegions_are_trees(self):
        fn = build_figure1_like()
        for region in form_treegions(fn.cfg):
            assert isinstance(region, Treegion)
            region.check_invariants()

    def test_diamond_splits_at_join(self):
        fn = diamond_function()
        partition = form_treegions(fn.cfg)
        entry_region = partition.region_of(fn.cfg.entry)
        assert entry_region.block_count == 3  # entry + both arms
        assert entry_region.path_count == 2

    def test_loop_header_roots_its_own_treegion(self):
        fn = loop_function()
        entry, header, body, exit_bb = fn.cfg.blocks()
        partition = form_treegions(fn.cfg)
        header_region = partition.region_of(header)
        # Header is a merge point (entry + back edge) so it cannot be
        # absorbed into the entry's treegion...
        assert partition.region_of(entry) is not header_region
        # ...but it roots a region containing the body and the exit.
        assert body in header_region
        assert exit_bb in header_region

    def test_switch_roots_wide_treegion(self):
        fn = switch_function(n_cases=6)
        partition = form_treegions(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        # entry + 6 cases + default; join is a merge point.
        assert top.block_count == 8
        assert top.path_count == 7

    def test_formation_is_profile_independent(self):
        fn_a = build_figure1_like(35, 25, 40)
        fn_b = build_figure1_like(0, 0, 0)
        shapes_a = sorted(len(r) for r in form_treegions(fn_a.cfg))
        shapes_b = sorted(len(r) for r in form_treegions(fn_b.cfg))
        assert shapes_a == shapes_b

    def test_exit_counts(self):
        fn = build_figure1_like()
        partition = form_treegions(fn.cfg)
        blocks = {b.name: b for b in fn.cfg.blocks()}
        top = partition.region_of(blocks["bb1"])
        # Exits: bb3->bb5, bb4->bb5, bb8->bb9 (three total).
        assert len(top.exits()) == 3
        assert top.exit_count_below(blocks["bb1"]) == 3
        assert top.exit_count_below(blocks["bb2"]) == 2
        assert top.exit_count_below(blocks["bb3"]) == 1
        assert top.exit_count_below(blocks["bb8"]) == 1

    def test_exit_weights_follow_profile(self):
        fn = build_figure1_like(35, 25, 40)
        partition = form_treegions(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        weights = sorted(e.weight for e in top.exits())
        assert weights == [25, 35, 40]


class TestSLRFormation:
    def test_slr_follows_heaviest_path(self):
        fn = build_figure1_like(35, 25, 40)
        partition = form_slrs(fn.cfg)
        blocks = {b.name: b for b in fn.cfg.blocks()}
        top = partition.region_of(blocks["bb1"])
        # Heaviest successor of bb1 is bb2 (60 > 40); of bb2 is bb3 (35>25).
        assert [b.name for b in top.blocks] == ["bb1", "bb2", "bb3"]
        # Linear region: one path.
        assert top.path_count == 1

    def test_slr_stops_at_merge_point(self):
        fn = diamond_function()
        partition = form_slrs(fn.cfg)
        entry_region = partition.region_of(fn.cfg.entry)
        join = fn.cfg.blocks()[3]
        assert join not in entry_region

    def test_slrs_smaller_than_treegions(self):
        """Table 1 vs Table 2: treegions contain >= blocks/ops than SLRs."""
        for make in (build_figure1_like, switch_function, diamond_function):
            fn = make()
            slr_sizes = sorted(len(r) for r in form_slrs(fn.cfg))
            tree_sizes = sorted(len(r) for r in form_treegions(fn.cfg))
            assert sum(tree_sizes) == sum(slr_sizes)  # both cover the CFG
            assert max(tree_sizes) >= max(slr_sizes)
            assert len(tree_sizes) <= len(slr_sizes)

    def test_slr_covering(self):
        for make in (diamond_function, loop_function, switch_function):
            fn = make()
            form_slrs(fn.cfg).verify_covering(fn.cfg)

    def test_zero_profile_ties_break_deterministically(self):
        fn = diamond_function()
        names_1 = [[b.name for b in r.blocks] for r in form_slrs(fn.cfg)]
        fn2 = diamond_function()
        names_2 = [[b.name for b in r.blocks] for r in form_slrs(fn2.cfg)]
        assert names_1 == names_2
