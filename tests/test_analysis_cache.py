"""The version-keyed analysis cache and its invalidation contract.

Every structural CFG mutation must bump ``cfg.version``, and the cache
must never serve an analysis computed before a bump — in particular
across tail duplication, which rewrites the CFG between two scheduling
passes of the same evaluation.
"""

import pytest

from repro.core import TreegionLimits, form_treegions_td
from repro.ir import (
    AnalysisCache,
    IRBuilder,
    Function,
    Opcode,
    RegClass,
    Register,
    liveness_of,
    register_bounds_of,
)
from repro.ir.analysis_cache import GLOBAL_CACHE
from repro.ir.clone import clone_function
from repro.ir.types import EdgeKind

from tests.helpers import diamond_function, straight_line_function


class TestVersionBumps:
    def test_builder_edits_bump(self):
        fn = Function("f")
        b = IRBuilder(fn)
        cfg = fn.cfg
        v0 = cfg.version
        entry = b.block("entry")
        assert cfg.version > v0
        v1 = cfg.version
        b.at(entry)
        b.mov(1)
        assert cfg.version > v1
        v2 = cfg.version
        b.ret(0)
        assert cfg.version > v2

    def test_edge_and_entry_mutations_bump(self):
        fn = diamond_function()
        cfg = fn.cfg
        entry, then_bb, else_bb, join = cfg.blocks()

        v = cfg.version
        extra = cfg.new_block("extra")
        assert cfg.version > v

        v = cfg.version
        edge = cfg.add_edge(join, extra, EdgeKind.FALLTHROUGH)
        assert cfg.version > v

        v = cfg.version
        cfg.retarget_edge(edge, join)
        assert cfg.version > v

        v = cfg.version
        cfg.remove_edge(edge)
        assert cfg.version > v

        v = cfg.version
        cfg.remove_block(extra)
        assert cfg.version > v

        v = cfg.version
        cfg.set_entry(entry)
        assert cfg.version > v

    def test_append_op_bumps(self):
        fn = straight_line_function()
        cfg = fn.cfg
        block = cfg.blocks()[0]
        v = cfg.version
        cfg.append_op(block, Opcode.NOP)
        assert cfg.version > v

    def test_clone_block_for_edge_bumps(self):
        fn = diamond_function()
        cfg = fn.cfg
        _, _, else_bb, join = cfg.blocks()
        incoming = else_bb.out_edges[0]
        v = cfg.version
        cfg.clone_block_for_edge(join, incoming)
        assert cfg.version > v

    def test_tail_duplication_bumps(self):
        fn = clone_function(diamond_function())
        entry, then_bb, else_bb, join = fn.cfg.blocks()
        entry.weight = 100
        then_bb.weight = 90
        else_bb.weight = 10
        join.weight = 100
        entry.taken_edge.weight = 90
        entry.fallthrough_edge.weight = 10
        then_bb.taken_edge.weight = 90
        else_bb.fallthrough_edge.weight = 10
        v = fn.cfg.version
        form_treegions_td(fn.cfg, TreegionLimits(code_expansion=4.0))
        assert fn.cfg.version > v


class TestCacheBehaviour:
    def test_hit_until_mutation(self):
        cache = AnalysisCache()
        fn = diamond_function()
        first = cache.liveness(fn.cfg)
        assert cache.liveness(fn.cfg) is first
        assert cache.hits == 1 and cache.misses == 1
        fn.cfg.bump_version()
        assert cache.liveness(fn.cfg) is not first
        assert cache.misses == 2

    def test_stale_liveness_never_served_across_tail_duplication(self):
        """The exact staleness scenario the evaluation engine hits: one
        CFG analysed, then tail-duplicated, then analysed again."""
        fn = clone_function(diamond_function())
        entry, then_bb, else_bb, join = fn.cfg.blocks()
        entry.weight = 100
        then_bb.weight = 90
        else_bb.weight = 10
        join.weight = 100
        entry.taken_edge.weight = 90
        entry.fallthrough_edge.weight = 10
        then_bb.taken_edge.weight = 90
        else_bb.fallthrough_edge.weight = 10

        before = liveness_of(fn.cfg)
        form_treegions_td(fn.cfg, TreegionLimits(code_expansion=4.0))
        after = liveness_of(fn.cfg)
        assert after is not before
        # The fresh analysis must know about every current block,
        # including the duplicated tail.
        for block in fn.cfg.blocks():
            after.live_in(block)  # must not raise

    def test_register_bounds_track_new_registers(self):
        fn = straight_line_function()
        cfg = fn.cfg
        bounds = register_bounds_of(cfg)
        high = Register(RegClass.GPR, bounds[RegClass.GPR] + 7)
        cfg.append_op(cfg.blocks()[0], Opcode.MOV, dests=[high],
                      srcs=[fn.params[0]] if fn.params else [])
        fresh = register_bounds_of(cfg)
        assert fresh[RegClass.GPR] == high.index + 1

    def test_dominators_invalidate_on_edge_change(self):
        cache = AnalysisCache()
        fn = diamond_function()
        cfg = fn.cfg
        entry, then_bb, else_bb, join = cfg.blocks()
        dom = cache.dominators(cfg)
        assert dom is cache.dominators(cfg)
        # A new edge entry -> join changes the dominance of join.
        cfg.add_edge(entry, join, EdgeKind.CASE, case_value=99)
        assert cache.dominators(cfg) is not dom

    def test_explicit_invalidate(self):
        cache = AnalysisCache()
        fn = diamond_function()
        first = cache.liveness(fn.cfg)
        cache.invalidate(fn.cfg)
        assert cache.liveness(fn.cfg) is not first
        second = cache.liveness(fn.cfg)
        cache.invalidate()
        assert cache.liveness(fn.cfg) is not second

    def test_global_cache_counters(self):
        GLOBAL_CACHE.reset_counters()
        fn = diamond_function()
        liveness_of(fn.cfg)
        liveness_of(fn.cfg)
        assert GLOBAL_CACHE.hits >= 1
        assert GLOBAL_CACHE.misses >= 1

    def test_cache_entries_die_with_cfg(self):
        cache = AnalysisCache()
        fn = diamond_function()
        cache.liveness(fn.cfg)
        assert len(cache._liveness) == 1
        del fn
        import gc

        gc.collect()
        assert len(cache._liveness) == 0


class TestBoundedSize:
    """The cap satellite: each table holds at most ``max_entries`` live
    CFGs and evicts least-recently-used on overflow."""

    def _functions(self, count):
        return [clone_function(diamond_function()) for _ in range(count)]

    def test_cap_evicts_least_recently_used(self):
        cache = AnalysisCache(max_entries=2)
        a, b, c = self._functions(3)
        cache.liveness(a.cfg)
        cache.liveness(b.cfg)
        cache.liveness(a.cfg)  # refresh a: b is now the LRU entry
        cache.liveness(c.cfg)  # overflow evicts b
        assert cache.evictions == 1
        assert a.cfg in cache._liveness
        assert c.cfg in cache._liveness
        assert b.cfg not in cache._liveness
        # An evicted entry only costs a recompute, never correctness.
        assert cache.liveness(b.cfg) is not None

    def test_cap_is_per_table(self):
        cache = AnalysisCache(max_entries=1)
        fn = diamond_function()
        cache.liveness(fn.cfg)
        cache.dominators(fn.cfg)
        cache.register_bounds(fn.cfg)
        # One CFG in three tables never overflows a per-table cap of 1.
        assert cache.evictions == 0

    def test_version_refresh_does_not_grow_the_table(self):
        cache = AnalysisCache(max_entries=1)
        fn = diamond_function()
        cache.liveness(fn.cfg)
        fn.cfg.bump_version()
        cache.liveness(fn.cfg)  # recompute replaces in place
        assert len(cache._liveness) == 1
        assert cache.evictions == 0

    def test_floor_of_one_entry(self):
        cache = AnalysisCache(max_entries=0)
        assert cache.max_entries == 1
        a, b = self._functions(2)
        cache.liveness(a.cfg)
        cache.liveness(b.cfg)
        assert len(cache._liveness) == 1
        assert cache.evictions == 1

    def test_reset_counters_clears_evictions(self):
        cache = AnalysisCache(max_entries=1)
        a, b = self._functions(2)
        cache.liveness(a.cfg)
        cache.liveness(b.cfg)
        assert cache.evictions == 1
        cache.reset_counters()
        assert cache.evictions == 0

    def test_evictions_published_as_gauge(self):
        from repro.ir.analysis_cache import record_cache_metrics
        from repro.obs import MetricsRegistry

        cache = AnalysisCache(max_entries=1)
        a, b = self._functions(2)
        cache.liveness(a.cfg)
        cache.liveness(b.cfg)
        metrics = MetricsRegistry()
        record_cache_metrics(metrics, cache)
        assert metrics.snapshot()["gauges"]["cache.evictions"] == 1


class TestOptPassesBump:
    def test_fold_constants_bumps_only_on_change(self):
        from repro.opt.fold import fold_constants

        fn = straight_line_function()
        cfg = fn.cfg
        v = cfg.version
        changed = fold_constants(cfg)
        if changed:
            assert cfg.version > v
        else:
            assert cfg.version == v

    def test_dce_bumps_on_removal(self):
        from repro.opt.dce import eliminate_dead_code

        fn = Function("dead")
        b = IRBuilder(fn)
        entry = b.block("entry")
        b.at(entry)
        b.mov(42)  # dead: never used
        b.ret(0)
        cfg = fn.cfg
        v = cfg.version
        removed = eliminate_dead_code(cfg)
        assert removed > 0
        assert cfg.version > v
