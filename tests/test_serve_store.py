"""The persistent artifact store: keys, durability, eviction, recovery.

The store's contract is "caching can cost time, never wrong answers":
a stored result must deserialize bit-identical to the computed one, a
corrupt entry must degrade to a miss, concurrent writers of one key
must race atomically, and the LRU bound must evict oldest-first.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.evaluation.engine import CellResult, GridCell, evaluate_cell
from repro.obs import MetricsRegistry, metrics_scope
from repro.serve import (
    ArtifactStore,
    cell_key,
    machine_fingerprint,
    result_from_payload,
    result_to_payload,
    store_schema,
)
from repro.serve.service import _builtin_text


def _result(benchmark: str = "b", time: float = 1.5,
            lengths=(3, 4)) -> CellResult:
    return CellResult(
        cell=GridCell(benchmark, "treegion", "4U", "global_weight"),
        time=time,
        code_expansion=1.25,
        schedule_lengths=tuple(lengths),
        total_copies=2,
        total_merged=1,
        total_speculated=7,
    )


KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


class TestKeys:
    def test_key_is_stable_and_content_addressed(self):
        cell = GridCell("compress", "treegion", "4U", "global_weight")
        text = _builtin_text("compress")
        assert cell_key(text, cell) == cell_key(text, cell)
        # Any input perturbation changes the key.
        assert cell_key(text + " ", cell) != cell_key(text, cell)
        for other in (
            GridCell("compress", "bb", "4U", "global_weight"),
            GridCell("compress", "treegion", "8U", "global_weight"),
            GridCell("compress", "treegion", "4U", "dep_height"),
            GridCell("compress", "treegion", "4U", "global_weight",
                     dominator_parallelism=True),
            GridCell("compress", "treegion", "4U", "global_weight",
                     schedule_copies=True),
        ):
            assert cell_key(text, other) != cell_key(text, cell)

    def test_scheme_spec_aliases_share_a_key(self):
        text = _builtin_text("compress")
        explicit = GridCell("compress", "treegion-td:2.0", "4U",
                            "global_weight")
        spelled = GridCell("compress", " treegion-td:2.0 ", "4U",
                           "global_weight")
        assert cell_key(text, explicit) == cell_key(text, spelled)

    def test_schema_version_is_part_of_the_key(self):
        assert store_schema() in json.dumps(
            result_to_payload(KEY_A, _result())
        )

    def test_machine_fingerprint_covers_latencies(self):
        from repro.machine.presets import VLIW_4U, universal_machine

        assert machine_fingerprint(VLIW_4U) != \
            machine_fingerprint(universal_machine(8))
        assert "ld=2" in machine_fingerprint(VLIW_4U)


class TestRoundTrip:
    def test_payload_round_trip_is_lossless(self):
        # An awkward float that must survive JSON exactly.
        result = _result(time=390814.5466726795, lengths=(6, 2, 14))
        payload = json.loads(json.dumps(result_to_payload(KEY_A, result)))
        assert result_from_payload(payload) == result

    def test_real_result_round_trip(self, tmp_path):
        cell = GridCell("compress", "treegion", "4U", "global_weight")
        result = evaluate_cell(cell)
        store = ArtifactStore(str(tmp_path))
        key = cell_key(_builtin_text("compress"), cell)
        store.put(key, result)
        assert store.get(key) == result


class TestDurability:
    def test_process_restart_hit(self, tmp_path):
        """An entry written by one store instance is served by a fresh
        instance on the same directory (the disk is the cache)."""
        first = ArtifactStore(str(tmp_path))
        first.put(KEY_A, _result())
        first.close()
        second = ArtifactStore(str(tmp_path))
        assert second.get(KEY_A) == _result()
        assert second.hits == 1

    def test_missing_key_is_a_plain_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.get(KEY_A) is None
        assert store.misses == 1
        assert store.corrupt == 0

    def test_index_rebuild_after_index_loss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY_A, _result())
        store.close()
        os.unlink(store.index_path)
        rebuilt = ArtifactStore(str(tmp_path))
        assert len(rebuilt) == 1
        assert rebuilt.get(KEY_A) == _result()

    def test_index_corruption_is_tolerated(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY_A, _result())
        store.close()
        with open(store.index_path, "w") as handle:
            handle.write("{ not json")
        rebuilt = ArtifactStore(str(tmp_path))
        assert rebuilt.get(KEY_A) == _result()


class TestEviction:
    def _sized_store(self, tmp_path, entries: int) -> ArtifactStore:
        """A store whose bound holds about ``entries`` result payloads."""
        size = len(json.dumps(result_to_payload(KEY_A, _result())))
        return ArtifactStore(str(tmp_path),
                             max_mb=(size * entries + size // 2) / 2**20)

    def test_lru_eviction_order(self, tmp_path):
        store = self._sized_store(tmp_path, 2)
        store.put(KEY_A, _result())
        store.put(KEY_B, _result())
        assert store.get(KEY_A) is not None  # A is now most recent
        store.put(KEY_C, _result())          # evicts B, not A
        assert store.evictions == 1
        assert KEY_B not in store
        assert store.get(KEY_A) is not None
        assert store.get(KEY_C) is not None

    def test_eviction_never_empties_the_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path), max_mb=0.0)
        store.put(KEY_A, _result())
        assert KEY_A in store  # the newest entry always survives

    def test_eviction_counter_and_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        with metrics_scope(metrics):
            store = self._sized_store(tmp_path, 1)
            store.put(KEY_A, _result())
            store.put(KEY_B, _result())
        assert store.evictions == 1
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["serve.store.evictions"] == 1
        assert snapshot["counters"]["serve.store.puts"] == 2


class TestCorruption:
    def test_corrupt_entry_recovers_as_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY_A, _result())
        with open(store._object_path(KEY_A), "w") as handle:
            handle.write("{ truncated")
        metrics = MetricsRegistry()
        with metrics_scope(metrics):
            assert store.get(KEY_A) is None
        assert store.corrupt == 1
        assert store.misses == 1
        # The bad file is gone; a re-put fully heals the entry.
        assert not os.path.exists(store._object_path(KEY_A))
        store.put(KEY_A, _result())
        assert store.get(KEY_A) == _result()
        counters = metrics.snapshot()["counters"]
        assert counters["serve.store.corrupt"] == 1

    def test_wrong_key_payload_is_corrupt(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY_A, _result())
        # A payload whose restated key disagrees with its filename
        # (e.g. a file copied between shards) must not be served.
        payload = result_to_payload(KEY_B, _result(time=9.9))
        with open(store._object_path(KEY_A), "w") as handle:
            json.dump(payload, handle)
        assert store.get(KEY_A) is None
        assert store.corrupt == 1

    def test_wrong_schema_payload_is_corrupt(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(KEY_A, _result())
        payload = result_to_payload(KEY_A, _result())
        payload["schema"] = "repro-0.0.0/store-0"
        with open(store._object_path(KEY_A), "w") as handle:
            json.dump(payload, handle)
        assert store.get(KEY_A) is None
        assert store.corrupt == 1


def _hammer_writes(directory: str, time_value: float, rounds: int) -> None:
    store = ArtifactStore(directory)
    for _ in range(rounds):
        store.put(KEY_A, _result(time=time_value))


class TestConcurrency:
    def test_concurrent_same_key_writers_never_tear(self, tmp_path):
        """Two processes hammering one key: every read is a valid
        payload from one writer or the other (atomic rename), and the
        final state is the last writer's."""
        directory = str(tmp_path)
        writers = [
            multiprocessing.Process(
                target=_hammer_writes, args=(directory, float(value), 40),
            )
            for value in (1.0, 2.0)
        ]
        for proc in writers:
            proc.start()
        reader = ArtifactStore(directory)
        for _ in range(200):
            result = reader.get(KEY_A)
            if result is not None:
                assert result.time in (1.0, 2.0)  # never a torn mix
        for proc in writers:
            proc.join()
            assert proc.exitcode == 0
        assert reader.corrupt == 0
        final = ArtifactStore(directory).get(KEY_A)
        assert final is not None and final.time in (1.0, 2.0)


class TestHitMissMetrics:
    def test_counters_flow_to_active_registry(self, tmp_path):
        metrics = MetricsRegistry()
        store = ArtifactStore(str(tmp_path))
        with metrics_scope(metrics):
            store.get(KEY_A)
            store.put(KEY_A, _result())
            store.get(KEY_A)
        counters = metrics.snapshot()["counters"]
        assert counters["serve.store.misses"] == 1
        assert counters["serve.store.hits"] == 1
        assert store.stats()["entries"] == 1
