"""Smoke tests: the fast example scripts must run end to end.

(The slower studies — minic_pipeline, future_work_studies, full_report —
are exercised by the benchmark suite's equivalents instead.)
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "paper_example.py",
    "heuristic_comparison.py",
    "tail_duplication_demo.py",
])
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists()
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
