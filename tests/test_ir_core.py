"""Tests for IR registers, operations, and basic CFG structure."""

import pytest

from repro.ir import (
    CFG,
    CompareCond,
    EdgeKind,
    Immediate,
    Opcode,
    Operation,
    RegClass,
    Register,
    RegisterFactory,
)


class TestRegister:
    def test_str_uses_class_prefix(self):
        assert str(Register(RegClass.GPR, 3)) == "r3"
        assert str(Register(RegClass.PRED, 0)) == "p0"
        assert str(Register(RegClass.BTR, 7)) == "b7"

    def test_equality_is_by_value(self):
        assert Register(RegClass.GPR, 1) == Register(RegClass.GPR, 1)
        assert Register(RegClass.GPR, 1) != Register(RegClass.PRED, 1)

    def test_factory_mints_unique_per_class(self):
        regs = RegisterFactory()
        a, b = regs.fresh_gpr(), regs.fresh_gpr()
        p = regs.fresh_pred()
        assert a != b
        assert p.rclass is RegClass.PRED
        assert p.index == 0  # classes have independent counters

    def test_factory_reserve_avoids_collisions(self):
        regs = RegisterFactory()
        regs.reserve(Register(RegClass.GPR, 5))
        assert regs.fresh_gpr().index == 6


class TestOperation:
    def _add(self, uid=1):
        return Operation(
            uid,
            Opcode.ADD,
            dests=[Register(RegClass.GPR, 2)],
            srcs=[Register(RegClass.GPR, 0), Register(RegClass.GPR, 1)],
        )

    def test_uses_include_guard(self):
        op = self._add()
        op.guard = Register(RegClass.PRED, 0)
        used = op.used_registers()
        assert Register(RegClass.PRED, 0) in used
        assert len(used) == 3

    def test_source_registers_exclude_guard_and_immediates(self):
        op = Operation(
            1, Opcode.ADD,
            dests=[Register(RegClass.GPR, 2)],
            srcs=[Register(RegClass.GPR, 0), Immediate(5)],
            guard=Register(RegClass.PRED, 0),
        )
        assert op.source_registers() == [Register(RegClass.GPR, 0)]

    def test_replace_uses_rewrites_sources_and_guard(self):
        op = self._add()
        op.guard = Register(RegClass.GPR, 0)  # contrived, but tests the path
        count = op.replace_uses(Register(RegClass.GPR, 0), Register(RegClass.GPR, 9))
        assert count == 2
        assert op.srcs[0] == Register(RegClass.GPR, 9)
        assert op.guard == Register(RegClass.GPR, 9)

    def test_replace_defs(self):
        op = self._add()
        assert op.replace_defs(Register(RegClass.GPR, 2), Register(RegClass.GPR, 8)) == 1
        assert op.dest == Register(RegClass.GPR, 8)

    def test_clone_preserves_origin(self):
        op = self._add(uid=10)
        clone = op.clone(uid=20)
        grandclone = clone.clone(uid=30)
        assert clone.uid == 20 and clone.origin == 10
        assert grandclone.origin == 10
        # Mutating the clone must not affect the original.
        clone.srcs[0] = Immediate(1)
        assert op.srcs[0] == Register(RegClass.GPR, 0)

    def test_same_computation(self):
        a, b = self._add(1), self._add(2)
        assert a.same_computation(b)
        b.srcs[1] = Immediate(3)
        assert not a.same_computation(b)

    def test_store_cannot_speculate(self):
        st = Operation(1, Opcode.ST, srcs=[Register(RegClass.GPR, 0), Immediate(0),
                                           Register(RegClass.GPR, 1)])
        assert not st.can_speculate
        assert self._add().can_speculate

    def test_branch_classification(self):
        br = Operation(1, Opcode.BRCT, srcs=[Register(RegClass.PRED, 0)], target=2)
        assert br.is_branch and br.is_terminator
        ret = Operation(2, Opcode.RET)
        assert ret.is_terminator and not ret.is_branch

    def test_dest_raises_on_multiple(self):
        cmpp = Operation(
            1, Opcode.CMPP,
            dests=[Register(RegClass.PRED, 0), Register(RegClass.PRED, 1)],
            srcs=[Register(RegClass.GPR, 0), Immediate(0)],
            cond=CompareCond.EQ,
        )
        with pytest.raises(ValueError):
            cmpp.dest


class TestCFG:
    def test_first_block_becomes_entry(self):
        cfg = CFG()
        b1 = cfg.new_block()
        cfg.new_block()
        assert cfg.entry is b1

    def test_edges_are_symmetric(self):
        cfg = CFG()
        a, b = cfg.new_block(), cfg.new_block()
        edge = cfg.add_edge(a, b, EdgeKind.FALLTHROUGH)
        assert edge in a.out_edges and edge in b.in_edges
        cfg.remove_edge(edge)
        assert not a.out_edges and not b.in_edges

    def test_merge_point_counts_edges_not_blocks(self):
        cfg = CFG()
        a, b = cfg.new_block(), cfg.new_block()
        cfg.add_edge(a, b, EdgeKind.TAKEN)
        cfg.add_edge(a, b, EdgeKind.FALLTHROUGH)
        assert b.is_merge_point()
        assert b.merge_count == 2

    def test_reverse_postorder_starts_at_entry(self):
        cfg = CFG()
        a, b, c = cfg.new_block(), cfg.new_block(), cfg.new_block()
        cfg.add_edge(a, b, EdgeKind.FALLTHROUGH)
        cfg.add_edge(b, c, EdgeKind.FALLTHROUGH)
        order = cfg.reverse_postorder()
        assert order == [a, b, c]

    def test_reverse_postorder_includes_unreachable(self):
        cfg = CFG()
        a = cfg.new_block()
        orphan = cfg.new_block()
        order = cfg.reverse_postorder()
        assert a in order and orphan in order

    def test_retarget_edge_updates_branch_target(self):
        cfg = CFG()
        a, b, c = cfg.new_block(), cfg.new_block(), cfg.new_block()
        br = cfg.append_op(a, Opcode.BRU, target=b.bid)
        edge = cfg.add_edge(a, b, EdgeKind.TAKEN)
        cfg.retarget_edge(edge, c)
        assert br.target == c.bid
        assert edge.dst is c
        assert edge not in b.in_edges and edge in c.in_edges

    def test_clone_block_for_edge_moves_weight(self):
        cfg = CFG()
        a, b, m, x = (cfg.new_block() for _ in range(4))
        cfg.append_op(m, Opcode.MOV, dests=[Register(RegClass.GPR, 0)],
                      srcs=[Immediate(1)])
        e1 = cfg.add_edge(a, m, EdgeKind.FALLTHROUGH, weight=30.0)
        e2 = cfg.add_edge(b, m, EdgeKind.FALLTHROUGH, weight=70.0)
        out = cfg.add_edge(m, x, EdgeKind.FALLTHROUGH, weight=100.0)
        m.weight = 100.0
        clone = cfg.clone_block_for_edge(m, e1)
        assert e1.dst is clone
        assert clone.weight == pytest.approx(30.0)
        assert m.weight == pytest.approx(70.0)
        assert out.weight == pytest.approx(70.0)
        clone_out = clone.out_edges[0]
        assert clone_out.dst is x and clone_out.weight == pytest.approx(30.0)
        # Clone ops are fresh uids, same origin.
        assert clone.ops[0].uid != m.ops[0].uid
        assert clone.ops[0].origin == m.ops[0].origin
        # m is no longer a merge point.
        assert not m.is_merge_point()
