"""Tests for the static-analysis subsystem (``repro.lint``).

Three layers:

* **Negative suite** — each rule is triggered on deliberately broken
  input and must report its own rule id at the right location;
* **Clean corpus** — every schedule the pipeline produces across the
  built-in workloads certifies clean: zero errors, and the only
  diagnostics allowed are the flow-sensitive warning rules
  (``ir.dead-store`` / ``ir.unreachable-block`` / ``ir.const-branch``),
  which legitimately fire on hand-written workloads (e.g. a mov kept
  only to give an else-arm a body);
* **Plumbing** — the verifier shim, the stable schedule accessors shared
  with ``dot --schedule`` and the simulator, the API facade, the CLI,
  metrics counters, and the oracle's lint mismatch category.
"""

import json

import pytest

from repro import api
from repro.core import TreegionLimits, form_treegions, form_treegions_td
from repro.ir import (
    CompareCond,
    Function,
    IRBuilder,
    Opcode,
    Program,
    RegClass,
    Register,
)
from repro.ir.analysis_cache import liveness_of
from repro.ir.clone import clone_function
from repro.ir.dot import cfg_to_dot
from repro.ir.printer import format_program
from repro.ir.types import Immediate
from repro.ir.verify import check_program, verify_function
from repro.interp import profile_program
from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    all_rules,
    check_schedule,
    lint_program,
)
from repro.lint.ir_rules import lint_cfg, lint_function, lint_program_ir
from repro.machine import SCALAR_1U, VLIW_4U, VLIW_8U, MachineModel
from repro.obs import MetricsRegistry, metrics_scope
from repro.schedule import ScheduleOptions, schedule_region
from repro.schedule.ddg import build_ddg
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.prep import prepare_region
from repro.schedule.priorities import GLOBAL_WEIGHT, HEURISTICS, priority_order
from repro.schedule.renaming import rename_region
from repro.util.errors import IRValidationError, ScheduleCertificationError
from repro.workloads.minic_programs import build_minic_program
from repro.workloads.paper_example import build_paper_example
from repro.workloads.pathological import (
    build_biased_treegion,
    build_linearized_treegion,
    build_wide_shallow_treegion,
)
from repro.workloads.specint import build_benchmark

from tests.helpers import diamond_function, program_with
from tests.test_regions_formation import build_figure1_like


# ----------------------------------------------------------------------
# Scheduling plumbing for the negative suite: build the (problem, ddg,
# schedule) triple the certifier consumes, so tests can corrupt it.


def _triple(fn, machine=VLIW_4U, heuristic=GLOBAL_WEIGHT, dp=False,
            region=None):
    if region is None:
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
    liveness = liveness_of(region.root.cfg)
    problem = prepare_region(region, machine, liveness)
    copies = rename_region(problem, liveness)
    ddg = build_ddg(problem, machine, liveness=liveness, copies=copies)
    order = priority_order(problem, ddg, heuristic)
    schedule = list_schedule(problem, ddg, order, machine,
                             dominator_parallelism=dp, copies=copies)
    return problem, ddg, schedule, liveness


def _move(schedule, sop, new_cycle):
    """Relocate a placed op to another cycle, keeping bundles coherent."""
    old = schedule.cycles[sop.cycle - 1]
    old.remove(sop)
    for slot, other in enumerate(old):
        other.slot = slot
    while len(schedule.cycles) < new_cycle:
        schedule.cycles.append([])
    dest = schedule.cycles[new_cycle - 1]
    sop.cycle = new_cycle
    sop.slot = len(dest)
    dest.append(sop)


def _chain_function():
    """One block: mov -> add -> add -> ret, a pure latency chain."""
    fn = Function("chain")
    b = IRBuilder(fn)
    block = b.block("entry")
    b.at(block)
    a = b.mov(1)
    c = b.add(a, 1)
    d = b.add(c, 1)
    b.ret(d)
    return fn


def _store_diamond():
    """Diamond with a store in the guarded then-block."""
    fn = Function("stdiamond", [Register(RegClass.GPR, 0)])
    fn.regs.reserve(Register(RegClass.GPR, 0))
    b = IRBuilder(fn)
    entry = b.block("entry")
    then_bb = b.block("then")
    else_bb = b.block("else")
    join = b.block("join")
    b.at(entry)
    base = b.mov(0)
    p = b.cmpp(CompareCond.GT, fn.params[0], 0)
    b.br_true(p, then_bb, else_bb)
    b.at(then_bb)
    b.st(base, 0, 7)
    b.jump(join)
    b.at(else_bb)
    b.mov(2)
    b.fallthrough(join)
    b.at(join)
    b.ret(0)
    return fn


def _certify(problem, ddg, schedule, machine, liveness):
    return check_schedule(problem, ddg, schedule, machine=machine,
                          liveness=liveness, function_name="f")


# ----------------------------------------------------------------------
# Schedule-rule negative suite


class TestScheduleRulesNegative:
    def test_clean_schedule_has_no_diagnostics(self):
        problem, ddg, schedule, liveness = _triple(diamond_function())
        report = _certify(problem, ddg, schedule, VLIW_4U, liveness)
        assert len(report) == 0 and report.ok

    def test_issue_width(self):
        # Certify a 4-wide schedule against a 1-wide machine: every
        # multi-op bundle is an issue-width violation.
        problem, ddg, schedule, liveness = _triple(diamond_function(),
                                                   machine=VLIW_4U)
        assert any(len(m) > 1 for m in schedule.cycles)
        narrow = MachineModel(name="1w", issue_width=1)
        report = _certify(problem, ddg, schedule, narrow, liveness)
        assert set(report.rule_ids()) == {"sched.issue-width"}

    def test_resource_caps(self):
        problem, ddg, schedule, liveness = _triple(diamond_function(),
                                                   machine=VLIW_4U)
        capped = MachineModel(name="nobr", issue_width=4,
                              max_branches_per_cycle=0)
        report = _certify(problem, ddg, schedule, capped, liveness)
        assert set(report.rule_ids()) == {"sched.resource"}

    def test_latency_violation(self):
        problem, ddg, schedule, liveness = _triple(_chain_function())
        # The add chain serializes; yank the deepest add up to cycle 1.
        adds = [s for s in problem.sched_ops
                if s.op.opcode is Opcode.ADD]
        victim = max(adds, key=lambda s: s.cycle)
        assert victim.cycle > 1
        _move(schedule, victim, 1)
        report = _certify(problem, ddg, schedule, VLIW_4U, liveness)
        assert "sched.latency" in report.rule_ids()
        diag = next(d for d in report if d.rule == "sched.latency")
        assert diag.op == victim.op.uid
        assert diag.severity is Severity.ERROR

    def test_speculated_store(self):
        problem, ddg, schedule, liveness = _triple(_store_diamond())
        st = next(s for s in problem.sched_ops
                  if s.op.opcode is Opcode.ST)
        assert st.op.guard is not None  # the scheduler guarded it
        st.op.guard = None  # pretend it was hoisted unguarded
        report = _certify(problem, ddg, schedule, VLIW_4U, liveness)
        assert set(report.rule_ids()) == {"sched.speculation"}
        diag = report.diagnostics[0]
        assert diag.block == st.home.bid and diag.op == st.op.uid

    def test_rename_clobber(self):
        # Un-rename the then-block's redefinition of t: its unguarded
        # write then clobbers the value the else-exit publishes.
        problem, ddg, schedule, liveness = _triple(diamond_function())
        assert schedule.copies, "renaming should have repaired an exit"
        exit, original, renamed = schedule.copies[0]
        writer = next(s for s in problem.sched_ops
                      if renamed in s.op.dests)
        writer.op.dests[0] = original
        schedule.copies[0] = (exit, original, original)
        report = _certify(problem, ddg, schedule, VLIW_4U, liveness)
        assert set(report.rule_ids()) == {"sched.rename-clobber"}

    def test_exit_copy_reads_undefined(self):
        problem, ddg, schedule, liveness = _triple(diamond_function())
        assert schedule.copies
        exit, original, _renamed = schedule.copies[0]
        schedule.copies[0] = (exit, original,
                              Register(RegClass.GPR, 9999))
        report = _certify(problem, ddg, schedule, VLIW_4U, liveness)
        assert set(report.rule_ids()) == {"sched.exit-copy"}

    def test_exit_retire_record_mismatch(self):
        problem, ddg, schedule, liveness = _triple(diamond_function())
        schedule.exits[0].cycle += 1
        report = _certify(problem, ddg, schedule, VLIW_4U, liveness)
        assert "sched.exit-retire" in report.rule_ids()

    def test_tree_shape_side_entry(self):
        fn = diamond_function()
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        problem, ddg, schedule, liveness = _triple(fn, region=region)
        blocks = list(region)
        assert len(blocks) == 3  # entry + then + else
        then_bb, else_bb = blocks[1], blocks[2]
        region._parent[then_bb.bid] = else_bb  # no such CFG edge
        report = _certify(problem, ddg, schedule, VLIW_4U, liveness)
        assert "sched.tree-shape" in report.rule_ids()
        messages = [d.message for d in report
                    if d.rule == "sched.tree-shape"]
        assert any("no matching CFG edge" in m for m in messages)

    def test_merge_divergent_computation(self):
        fn = clone_function(build_figure1_like())
        partition = form_treegions_td(
            fn.cfg, TreegionLimits(code_expansion=3.0)
        )
        region = partition.region_of(fn.cfg.entry)
        problem, ddg, schedule, liveness = _triple(
            fn, machine=VLIW_8U, dp=True, region=region
        )
        assert schedule.merged, "expected a dominator-parallelism merge"
        merged = schedule.merged[0]
        merged.op.srcs[0] = Immediate(4242)
        report = _certify(problem, ddg, schedule, VLIW_8U, liveness)
        assert "sched.merge" in report.rule_ids()

    def test_placement_slot_mismatch(self):
        problem, ddg, schedule, liveness = _triple(diamond_function())
        schedule.cycles[0][0].slot = 99
        report = _certify(problem, ddg, schedule, VLIW_4U, liveness)
        assert set(report.rule_ids()) == {"sched.placement"}


# ----------------------------------------------------------------------
# IR-rule negative suite


def _block_named(fn, name):
    return next(b for b in fn.cfg.blocks() if b.name == name)


class TestIRRulesNegative:
    def test_clean_function(self):
        # The diamond's else-arm mov exists to give the arm a body; its
        # value dies at the join, so the flow-sensitive pack flags it —
        # a single dead-store warning is the expected steady state.
        report = lint_function(diamond_function(), LintReport())
        assert report.ok
        assert set(report.rule_ids()) <= {"ir.dead-store"}

    def test_entry_missing(self):
        fn = Function("empty")
        report = lint_cfg(fn.cfg, LintReport())
        assert report.rule_ids() == ["ir.entry"]

    def test_terminator_missing(self):
        fn = diamond_function()
        join = _block_named(fn, "join")
        join.ops.pop()  # drop the RET
        report = lint_cfg(fn.cfg, LintReport())
        assert "ir.terminator" in report.rule_ids()
        diag = next(d for d in report if d.rule == "ir.terminator")
        assert diag.block == join.bid

    def test_branch_target_mismatch(self):
        fn = diamond_function()
        entry = _block_named(fn, "entry")
        join = _block_named(fn, "join")
        entry.terminator.target = join.bid
        report = lint_cfg(fn.cfg, LintReport())
        assert "ir.branch-target" in report.rule_ids()

    def test_edge_asymmetry(self):
        fn = diamond_function()
        join = _block_named(fn, "join")
        join.in_edges.remove(join.in_edges[0])
        report = lint_cfg(fn.cfg, LintReport())
        assert "ir.edge-symmetry" in report.rule_ids()

    def test_op_shape_cmpp_without_dests(self):
        fn = diamond_function()
        entry = _block_named(fn, "entry")
        cmpp = next(op for op in entry.ops if op.opcode is Opcode.CMPP)
        del cmpp.dests[:]
        report = lint_cfg(fn.cfg, LintReport())
        assert "ir.op-shape" in report.rule_ids()
        diag = next(d for d in report if d.rule == "ir.op-shape")
        assert diag.op == cmpp.uid

    def test_duplicate_parser_label(self):
        fn = diamond_function()
        _block_named(fn, "then").name = "bb99"
        _block_named(fn, "else").name = "bb99"
        report = lint_cfg(fn.cfg, LintReport())
        assert "ir.duplicate-label" in report.rule_ids()

    def test_decorative_duplicate_names_allowed(self):
        fn = diamond_function()
        _block_named(fn, "then").name = "work"
        _block_named(fn, "else").name = "work"
        report = lint_cfg(fn.cfg, LintReport())
        assert "ir.duplicate-label" not in report.rule_ids()

    def test_duplicate_uid(self):
        fn = diamond_function()
        entry = _block_named(fn, "entry")
        entry.ops[1].uid = entry.ops[0].uid
        report = lint_cfg(fn.cfg, LintReport())
        assert "ir.unique-uid" in report.rule_ids()

    def test_guard_without_dominating_def(self):
        fn = diamond_function()
        join = _block_named(fn, "join")
        join.ops[0].guard = Register(RegClass.PRED, 50)
        report = lint_cfg(fn.cfg, LintReport())
        assert "ir.guard-def" in report.rule_ids()

    def test_missing_return(self):
        fn = Function("spin")
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.mov(1)
        b.jump(block)
        report = lint_function(fn, LintReport())
        assert "ir.return" in report.rule_ids()

    def test_must_uninit_use_is_an_error(self):
        # No definition of r55 on any path: the flow-sensitive rule
        # grades this as an error and names an offending path.
        fn = Function("uses")
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.add(Register(RegClass.GPR, 55), 1)
        b.ret(0)
        report = lint_function(fn, LintReport())
        assert "ir.uninit-use" in report.rule_ids()
        diag = next(d for d in report if d.rule == "ir.uninit-use")
        assert diag.severity is Severity.ERROR
        assert not report.ok
        assert "bb" in (diag.hint or "")  # hint carries the path

    def test_may_uninit_use_is_a_warning(self):
        # Defined on the then-arm only; the join's read is uninitialized
        # along entry->join, so the rule stays a warning.
        fn = Function("maybe", [Register(RegClass.GPR, 0)])
        fn.regs.reserve(Register(RegClass.GPR, 0))
        b = IRBuilder(fn)
        entry = b.block("entry")
        then_bb = b.block("then")
        join = b.block("join")
        b.at(entry)
        p = b.cmpp(CompareCond.GT, fn.params[0], 0)
        b.br_true(p, then_bb, join)
        b.at(then_bb)
        v = b.mov(7)
        b.jump(join)
        b.at(join)
        b.ret(v)
        report = lint_function(fn, LintReport())
        diag = next(d for d in report if d.rule == "ir.uninit-use")
        assert diag.severity is Severity.WARNING
        assert report.ok  # warnings do not fail the report

    def test_use_def_alias_still_resolves(self):
        # Saved ``--fail-on`` configs and JSON reports address the old
        # rule id; the registry alias keeps it working.
        from repro.lint.registry import get_rule, resolve_rule_id

        assert resolve_rule_id("ir.use-def") == "ir.uninit-use"
        assert get_rule("ir.use-def").id == "ir.uninit-use"

    def test_program_entry_undefined(self):
        program = program_with(diamond_function())
        program.entry_name = "missing"
        report = lint_program_ir(program)
        assert "ir.program-entry" in report.rule_ids()

    def test_call_targets(self):
        callee = diamond_function("callee")
        fn = Function("main")
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.call("nope", [])        # undefined callee
        b.call("callee", [])      # arity mismatch: callee takes 1
        b.ret(0)
        program = Program(entry="main")
        program.add_function(fn)
        program.add_function(callee)
        report = lint_program_ir(program)
        call_diags = [d for d in report if d.rule == "ir.call-target"]
        assert len(call_diags) == 2


# ----------------------------------------------------------------------
# Clean corpus: the real pipeline certifies clean everywhere.


def _clean_corpus():
    programs = [
        ("paper", build_paper_example()),
        ("biased", build_biased_treegion()),
        ("wide", build_wide_shallow_treegion()),
        ("linear", build_linearized_treegion()),
    ]
    for name in ("sort", "hash"):
        program, args = build_minic_program(name)
        profile_program(program, inputs=[args])
        programs.append((f"minic-{name}", program))
    return programs


#: Flow-sensitive warnings that legitimately fire on the hand-written
#: workloads (padding movs, profile-dead arms); anything else — and any
#: error, and any schedule-family diagnostic — means the pipeline broke.
_EXPECTED_FLOW_WARNINGS = {
    "ir.dead-store", "ir.unreachable-block", "ir.const-branch",
}


class TestCleanCorpus:
    @pytest.mark.parametrize("heuristic", list(HEURISTICS))
    def test_workloads_certify_clean(self, heuristic):
        options = ScheduleOptions(heuristic=heuristic,
                                  dominator_parallelism=True)
        for name, program in _clean_corpus():
            for machine in ("4U", "8U"):
                for scheme in ("treegion", "treegion-td:2.0"):
                    report = api.lint_program(
                        program, schedule=True, scheme=scheme,
                        machine_model=machine, options=options,
                    )
                    unexpected = (set(report.rule_ids())
                                  - _EXPECTED_FLOW_WARNINGS)
                    assert report.ok and not unexpected, (
                        f"{name}/{scheme}/{machine}/{heuristic}: "
                        + report.format()
                    )

    def test_specint_certifies_with_known_warnings(self):
        program = build_benchmark("compress")
        report = api.lint_program(program, schedule=True,
                                  machine_model="8U")
        assert report.ok
        assert set(report.rule_ids()) == {"ir.dead-store"}

    def test_superblock_regression_no_side_entries(self):
        # Duplicating a later superblock trace used to point clone
        # out-edges into the middle of an earlier trace; seed 34 of the
        # validation generator exhibited it (sched.tree-shape).
        from repro.evaluation.engine import machine_by_name
        from repro.validate.generator import generate
        from repro.validate.oracle import Cell, _interpret, check_cell

        generated = generate(34)
        cell = Cell("superblock", "4U", "global_weight")
        reference = _interpret(generated.program, [-18, 2])
        mismatches = check_cell(generated.program, [-18, 2], cell,
                                machine_by_name("4U"), reference)
        assert mismatches == []


# ----------------------------------------------------------------------
# Rule registry


class TestRegistry:
    def test_catalog_is_complete(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert len(ids) == len(set(ids))
        assert len(rules) >= 20
        families = {rule.family for rule in rules}
        assert families == {"ir", "schedule"}
        for rule in rules:
            assert rule.summary and rule.invariant
            assert rule.check is not None

    def test_metrics_counters_per_rule(self):
        fn = diamond_function()
        _block_named(fn, "join").ops.pop()  # break the terminator
        registry = MetricsRegistry()
        with metrics_scope(registry):
            lint_cfg(fn.cfg, LintReport())
        assert registry.counters.get("lint.diagnostics", 0) >= 1
        assert registry.counters.get("lint.rule.ir.terminator", 0) >= 1


# ----------------------------------------------------------------------
# Verifier shim


class TestVerifyShim:
    def test_raises_with_all_errors(self):
        fn = diamond_function()
        entry = _block_named(fn, "entry")
        join = _block_named(fn, "join")
        entry.terminator.target = join.bid     # ir.branch-target
        _block_named(fn, "then").name = "bb99"
        _block_named(fn, "else").name = "bb99"  # ir.duplicate-label
        with pytest.raises(IRValidationError) as excinfo:
            verify_function(fn)
        message = str(excinfo.value)
        assert "ir.branch-target" in message
        assert "ir.duplicate-label" in message

    def test_warnings_do_not_raise(self):
        # A dead store is warning-grade; the shim only raises on errors.
        fn = Function("pad")
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.mov(1)  # result never read: ir.dead-store warning
        b.ret(0)
        verify_function(fn)

    def test_must_uninit_raises(self):
        # The flow-sensitive rule grades a read nothing ever defines as
        # an error, so the shim now rejects what the old path-
        # insensitive ``ir.use-def`` warning let through.
        fn = Function("uses")
        b = IRBuilder(fn)
        block = b.block("entry")
        b.at(block)
        b.add(Register(RegClass.GPR, 55), 1)
        b.ret(0)
        with pytest.raises(IRValidationError) as excinfo:
            verify_function(fn)
        assert "ir.uninit-use" in str(excinfo.value)

    def test_check_program_lists_errors(self):
        program = program_with(diamond_function())
        assert check_program(program) == []
        program.entry_name = "missing"
        problems = check_program(program)
        assert problems and "ir.program-entry" in problems[0]


# ----------------------------------------------------------------------
# Stable schedule accessors (shared with dot --schedule / simulator)


class TestScheduleAccessors:
    def test_iter_bundles_is_one_based(self):
        _problem, _ddg, schedule, _liveness = _triple(diamond_function())
        bundles = list(schedule.iter_bundles())
        assert bundles[0][0] == 1
        assert [m for _c, m in bundles] == schedule.cycles

    def test_placement_follows_merges(self):
        fn = clone_function(build_figure1_like())
        partition = form_treegions_td(
            fn.cfg, TreegionLimits(code_expansion=3.0)
        )
        region = partition.region_of(fn.cfg.entry)
        _p, _d, schedule, _l = _triple(fn, machine=VLIW_8U, dp=True,
                                       region=region)
        assert schedule.merged
        for merged in schedule.merged:
            survivor = merged.merged_into
            assert schedule.placement(merged) == (survivor.cycle,
                                                  survivor.slot)

    def test_dot_agrees_with_lint_view(self):
        # dot --schedule annotates each block with its last issue cycle;
        # it must agree with the certifier's effective-cycle view, both
        # reading through RegionSchedule.last_issue_by_block().
        fn = build_figure1_like()
        partition = form_treegions(fn.cfg)
        schedules = [
            schedule_region(region, VLIW_4U, ScheduleOptions())
            for region in partition
        ]
        dot = cfg_to_dot(fn.cfg, partition=partition, name=fn.name,
                         schedules=schedules)
        for schedule in schedules:
            # Independent re-derivation from per-op placements.
            expected = {}
            for _cycle, multiop in schedule.iter_bundles():
                for sop in multiop:
                    cycle, _slot = schedule.placement(sop)
                    bid = sop.home.bid
                    expected[bid] = max(expected.get(bid, 0), cycle)
            assert expected == schedule.last_issue_by_block()
            for bid, cycle in expected.items():
                assert (f"sched: last op @ cycle {cycle} "
                        f"of {schedule.length}") in dot


# ----------------------------------------------------------------------
# Pipeline hook, API facade, oracle category, CLI


class TestPipelineHook:
    def test_certify_option_raises_on_corruption(self):
        from repro.schedule.scheduler import _certify as certify_hook

        problem, ddg, schedule, liveness = _triple(diamond_function())
        schedule.cycles[0][0].slot = 99
        with pytest.raises(ScheduleCertificationError) as excinfo:
            certify_hook(problem, ddg, schedule, VLIW_4U, liveness,
                         ScheduleOptions(certify=True))
        assert excinfo.value.diagnostics
        assert "sched.placement" in str(excinfo.value)

    def test_certify_option_passes_clean_pipeline(self):
        fn = diamond_function()
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        schedule = schedule_region(region, VLIW_4U,
                                   ScheduleOptions(certify=True))
        assert schedule.length >= 1

    def test_mismatch_carries_rule_ids(self):
        from repro.validate.oracle import Mismatch

        mismatch = Mismatch(check="lint", expected="clean",
                            actual="1 violation",
                            rules=["sched.latency"])
        assert mismatch.to_json()["rules"] == ["sched.latency"]


class TestApiAndCli:
    def test_api_lint_program(self):
        report = lint_program(build_paper_example(), schedule=True)
        assert isinstance(report, LintReport)
        assert report.ok
        assert set(report.rule_ids()) <= _EXPECTED_FLOW_WARNINGS

    def test_api_export(self):
        assert "lint_program" in api.__all__
        report = api.lint_program(build_paper_example(), schedule=True,
                                  scheme="treegion", machine_model="4U")
        assert report.ok

    def _write_minic(self, tmp_path):
        path = tmp_path / "prog.mc"
        path.write_text(
            "func main(n) { var acc = 0; for (var i = 0; i < n; "
            "i = i + 1) { acc = acc + i; } return acc; }"
        )
        return str(path)

    def test_cli_clean_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        status = main(["lint", self._write_minic(tmp_path),
                       "--schedule"])
        out = capsys.readouterr().out
        assert status == 0
        assert "clean: no diagnostics" in out

    def test_cli_json_format(self, tmp_path, capsys):
        from repro.cli import main

        status = main(["lint", self._write_minic(tmp_path),
                       "--schedule", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["ok"] is True and payload["errors"] == 0

    def test_cli_fail_on_warning(self, tmp_path, capsys):
        from repro.cli import main

        fn = Function("w")
        b = IRBuilder(fn)
        block = b.block("bb1")
        b.at(block)
        b.mov(1)  # dead store: warning-grade
        b.ret(0)
        path = tmp_path / "warn.ir"
        path.write_text(format_program(program_with(fn)))

        assert main(["lint", str(path)]) == 0  # warnings pass by default
        capsys.readouterr()
        status = main(["lint", str(path), "--fail-on", "warning"])
        out = capsys.readouterr().out
        assert status == 1
        assert "ir.dead-store" in out

    def test_cli_rejects_file_plus_corpus(self, tmp_path, capsys):
        from repro.cli import main

        # Bad invocations follow the CLI contract: exit 2 plus a single
        # "repro: error:" line on stderr (see tests/test_cli_exit_codes).
        assert main(["lint", self._write_minic(tmp_path), "--corpus"]) == 2
        assert "repro: error:" in capsys.readouterr().err
        assert main(["lint"]) == 2
        assert "repro: error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Diagnostic value types


class TestDiagnostics:
    def test_location_and_format(self):
        diag = Diagnostic(rule="ir.op-shape", severity=Severity.ERROR,
                          message="bad", function="f", block=2, op=7,
                          hint="fix it")
        assert diag.location == "f/bb2/op7"
        text = diag.format()
        assert text.startswith("error [ir.op-shape] f/bb2/op7: bad")
        assert "(hint: fix it)" in text

    def test_report_aggregation(self):
        report = LintReport()
        report.add(Diagnostic(rule="a", severity=Severity.ERROR,
                              message="x"))
        report.add(Diagnostic(rule="b", severity=Severity.WARNING,
                              message="y"))
        report.add(Diagnostic(rule="a", severity=Severity.ERROR,
                              message="z"))
        assert not report.ok
        assert report.counts() == {"a": 2, "b": 1}
        assert report.rule_ids() == ["a", "b"]
        assert len(report.at_or_above(Severity.WARNING)) == 3
        assert len(report.at_or_above(Severity.ERROR)) == 2
        payload = report.to_json()
        assert payload["errors"] == 2 and payload["warnings"] == 1

    def test_severity_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        with pytest.raises(ValueError):
            Severity.parse("fatal")
