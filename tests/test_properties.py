"""Property-based tests (hypothesis) over the core invariants.

Three generators drive these:

* random minic programs (bounded loops, guarded divisions) — compiled,
  interpreted, scheduled under every scheme, and co-simulated;
* the synthetic CFG generator under random parameters — formation
  invariants and schedule well-formedness must hold for any of them;
* plain data-structure properties (OrderedSet).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.util import OrderedSet
from repro.core import Treegion, form_treegions, form_treegions_td
from repro.core.tail_duplication import TreegionLimits
from repro.interp import Interpreter, profile_program
from repro.lang import compile_source
from repro.machine import VLIW_4U, VLIW_8U
from repro.regions import form_slrs
from repro.ir import verify_program
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import HEURISTICS
from repro.evaluation import treegion_scheme, treegion_td_scheme, superblock_scheme
from repro.vliw import simulate
from repro.workloads.synthetic import SynthParams, generate_function

# ----------------------------------------------------------------------
# Random minic programs


class _MinicGen:
    """Generates terminating minic programs from a random stream."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.vars = ["a", "b", "c"]
        self.loop_count = 0

    def expr(self, depth=2) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.4:
            if rng.random() < 0.5:
                return rng.choice(self.vars)
            return str(rng.randint(-9, 9))
        op = rng.choice(["+", "-", "*", "&", "|", "^"])
        return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"

    def cond(self) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        base = f"{self.expr(1)} {op} {self.expr(1)}"
        roll = self.rng.random()
        if roll < 0.2:
            return f"({base}) && ({self.expr(1)} != 0)"
        if roll < 0.4:
            return f"({base}) || ({self.expr(1)} > 3)"
        return base

    def stmt(self, depth) -> str:
        rng = self.rng
        roll = rng.random()
        target = rng.choice(self.vars)
        if depth <= 0 or roll < 0.35:
            return f"{target} = {self.expr()};"
        if roll < 0.55:
            return (
                f"if ({self.cond()}) {{ {self.block(depth - 1)} }} "
                f"else {{ {self.block(depth - 1)} }}"
            )
        if roll < 0.7:
            self.loop_count += 1
            i = f"i{self.loop_count}"
            return (
                f"for (var {i} = 0; {i} < {rng.randint(1, 4)}; {i} = {i} + 1)"
                f" {{ {self.block(depth - 1)} }}"
            )
        if roll < 0.85:
            cases = " ".join(
                f"case {v}: {{ {self.block(0)} }}"
                for v in range(rng.randint(1, 3))
            )
            return (
                f"switch ({self.expr(1)} & 3) {{ {cases} "
                f"default: {{ {self.block(0)} }} }}"
            )
        return f"g[{rng.randint(0, 7)}] = {self.expr(1)};"

    def block(self, depth) -> str:
        return " ".join(self.stmt(depth) for _ in range(self.rng.randint(1, 3)))

    def program(self) -> str:
        body = self.block(2)
        return (
            "array g[8];\n"
            "func main(a, b) {\n"
            f"    var c = a - b;\n    {body}\n"
            "    var out = a + b * 3 + c;\n"
            "    for (var k = 0; k < 8; k = k + 1) { out = out + g[k]; }\n"
            "    return out;\n"
            "}\n"
        )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       a=st.integers(min_value=-20, max_value=20),
       b=st.integers(min_value=-20, max_value=20))
def test_random_minic_cosimulates(seed, a, b):
    source = _MinicGen(random.Random(seed)).program()
    program = compile_source(source)
    verify_program(program)
    expected = Interpreter(program).run([a, b])
    profile_program(program, inputs=[[a, b]])
    options = ScheduleOptions(dominator_parallelism=True)
    for scheme in (treegion_scheme(),
                   treegion_td_scheme(TreegionLimits(code_expansion=3.0)),
                   superblock_scheme()):
        result, simulator = simulate(program, scheme, VLIW_4U, [a, b], options)
        assert result == expected, f"{scheme.name} mis-executed seed {seed}"


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_minic_all_heuristics_agree(seed):
    source = _MinicGen(random.Random(seed)).program()
    program = compile_source(source)
    expected = Interpreter(program).run([3, -2])
    profile_program(program, inputs=[[3, -2]])
    for heuristic in HEURISTICS:
        result, _ = simulate(program, treegion_scheme(), VLIW_8U, [3, -2],
                             ScheduleOptions(heuristic=heuristic))
        assert result == expected


# ----------------------------------------------------------------------
# Random synthetic CFGs

def _random_params(seed: int) -> SynthParams:
    rng = random.Random(seed)
    return SynthParams(
        name=f"prop{seed}",
        seed=seed,
        target_blocks=rng.randint(20, 120),
        toplevel=rng.randint(2, 10),
        depth=rng.randint(1, 4),
        block_ops_mean=rng.uniform(2, 9),
        switch_odds=rng.uniform(0, 1.5),
        switch_fanout=(2, rng.randint(3, 20)),
        loop_odds=rng.uniform(0, 2),
        chain_odds=rng.uniform(0, 2),
        bias_lo=0.5,
        bias_hi=rng.uniform(0.55, 0.99),
        full_bias_prob=rng.uniform(0, 0.5),
        chain_frac=rng.uniform(0, 0.9),
    )


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_cfg_formation_invariants(seed):
    from repro.ir.verify import verify_function

    function = generate_function(_random_params(seed))
    verify_function(function)

    partition = form_treegions(function.cfg)
    partition.verify_covering(function.cfg)
    for region in partition:
        assert isinstance(region, Treegion)
        region.check_invariants()
        # Path count equals leaf count and is at least 1.
        assert region.path_count == len(region.leaves()) >= 1

    slrs = form_slrs(function.cfg)
    slrs.verify_covering(function.cfg)
    for region in slrs:
        assert region.path_count == 1


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_cfg_tail_duplication_invariants(seed):
    from repro.ir.verify import verify_function

    function = generate_function(_random_params(seed))
    before_ret_weight = sum(
        b.weight for b in function.cfg.blocks()
        if b.terminator is not None and b.terminator.opcode.value == "ret"
    )
    limits = TreegionLimits(code_expansion=2.0)
    partition = form_treegions_td(function.cfg, limits)
    verify_function(function)
    partition.verify_covering(function.cfg)
    for region in partition:
        region.check_invariants()
        assert region.path_count <= max(limits.path_count,
                                        region.block_count)
    # Tail duplication conserves profile flow into function exits.
    after_ret_weight = sum(
        b.weight for b in function.cfg.blocks()
        if b.terminator is not None and b.terminator.opcode.value == "ret"
    )
    assert after_ret_weight == pytest.approx(before_ret_weight, rel=1e-6)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000),
       heuristic=st.sampled_from(HEURISTICS))
def test_random_cfg_schedules_are_well_formed(seed, heuristic):
    from repro.schedule.scheduler import schedule_partition

    function = generate_function(_random_params(seed))
    partition = form_treegions(function.cfg)
    schedules = schedule_partition(partition, VLIW_4U,
                                   ScheduleOptions(heuristic=heuristic))
    for schedule in schedules:
        # Width respected, ops unique, exits recorded, deps satisfied.
        for multiop in schedule.cycles:
            assert len(multiop) <= VLIW_4U.issue_width
        assert len(schedule.exits) == len(schedule.region.exits())
        for record in schedule.exits:
            assert 1 <= record.cycle <= schedule.length
        by_dest = {}
        for sop in schedule.all_ops():
            for dest in sop.op.defined_registers():
                by_dest.setdefault(dest, []).append(sop)


# ----------------------------------------------------------------------
# OrderedSet properties

@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50)))
def test_ordered_set_behaves_like_set_with_order(items):
    ordered = OrderedSet(items)
    assert ordered == set(items)
    # Iteration preserves first-insertion order.
    seen = []
    for item in items:
        if item not in seen:
            seen.append(item)
    assert list(ordered) == seen


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=1))
def test_ordered_set_pop_first_is_fifo(items):
    ordered = OrderedSet(items)
    unique = list(dict.fromkeys(items))
    popped = [ordered.pop_first() for _ in range(len(unique))]
    assert popped == unique
    assert not ordered
