"""Region/machine content fingerprints (``repro.schedule.fingerprint``).

The region memo is only sound if the fingerprint is *canonical* —
invariant under everything the scheduler cannot observe (register
numbering, block ids, op uids) and sensitive to everything it can
(opcodes, immediates, weights, exit structure, live-out sets).
"""

import os
import subprocess
import sys

import pytest

from repro.core import form_treegions
from repro.ir import CompareCond, Function, IRBuilder, Opcode, RegClass, Register
from repro.ir.analysis_cache import liveness_of
from repro.ir.clone import clone_function
from repro.machine import VLIW_4U, VLIW_8U, MachineModel
from repro.schedule.fingerprint import (
    latency_fingerprint,
    machine_fingerprint,
    region_fingerprint,
)
from repro.workloads.paper_example import build_paper_example


def _diamond(offset=0, imm=2, use_sub=False, then_weight=None,
             swap_targets=False):
    """The if/else diamond with canonicalization knobs.

    ``offset`` burns that many register indices before building, so the
    op stream is an alpha-renamed twin; the other knobs change content
    the scheduler *can* observe.
    """
    fn = Function("diamond", [Register(RegClass.GPR, 0)])
    fn.regs.reserve(Register(RegClass.GPR, 0))
    for _ in range(offset):
        fn.regs.fresh_gpr()
    b = IRBuilder(fn)
    entry = b.block("entry")
    then_bb = b.block("then")
    else_bb = b.block("else")
    join = b.block("join")

    b.at(entry)
    t = b.mov(0)
    if use_sub:
        e = b.sub(fn.params[0], 0)
    else:
        e = b.add(fn.params[0], 0)
    p = b.cmpp(CompareCond.GT, fn.params[0], 0)
    if swap_targets:
        b.br_true(p, else_bb, then_bb)
    else:
        b.br_true(p, then_bb, else_bb)

    b.at(then_bb)
    b.mov(1, dest=t)
    b.jump(join)

    b.at(else_bb)
    b.mov(imm, dest=e)
    b.fallthrough(join)

    b.at(join)
    b.add(t, e)
    b.ret(0)
    if then_weight is not None:
        then_bb.weight = then_weight
    return fn


def _root_fingerprint(fn):
    partition = form_treegions(fn.cfg)
    region = partition.region_of(fn.cfg.entry)
    return region_fingerprint(region, liveness_of(fn.cfg))


class TestCanonicalization:
    def test_deterministic(self):
        assert _root_fingerprint(_diamond()) == _root_fingerprint(_diamond())

    def test_alpha_renamed_twin_equal(self):
        # Same structure, register indices shifted by 7: the scheduler
        # cannot tell them apart, so neither may the fingerprint.
        assert (_root_fingerprint(_diamond())
                == _root_fingerprint(_diamond(offset=7)))

    def test_clone_equal(self):
        fn = build_paper_example().entry_function
        twin = clone_function(fn)
        ours = [region_fingerprint(r, liveness_of(fn.cfg))
                for r in form_treegions(fn.cfg)]
        theirs = [region_fingerprint(r, liveness_of(twin.cfg))
                  for r in form_treegions(twin.cfg)]
        assert ours == theirs

    def test_opcode_mutation_differs(self):
        assert (_root_fingerprint(_diamond())
                != _root_fingerprint(_diamond(use_sub=True)))

    def test_immediate_mutation_differs(self):
        assert (_root_fingerprint(_diamond())
                != _root_fingerprint(_diamond(imm=3)))

    def test_weight_mutation_differs(self):
        assert (_root_fingerprint(_diamond())
                != _root_fingerprint(_diamond(then_weight=40.0)))

    def test_exit_structure_differs(self):
        # Swapping the branch's taken/fallthrough targets rewires which
        # edge reaches which block — observable through exit order.
        assert (_root_fingerprint(_diamond())
                != _root_fingerprint(_diamond(swap_targets=True)))

    def test_distinct_regions_distinct_fingerprints(self):
        fn = build_paper_example().entry_function
        liveness = liveness_of(fn.cfg)
        fingerprints = [region_fingerprint(r, liveness)
                        for r in form_treegions(fn.cfg)]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_liveness_none_keys_differently(self):
        fn = _diamond()
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        with_liveness = region_fingerprint(region, liveness_of(fn.cfg))
        # Fresh region objects: the digest is cached on the region.
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        without = region_fingerprint(region, None)
        assert with_liveness != without


class TestCrossProcessStability:
    def test_subprocess_agrees(self):
        """Fingerprints must be stable across interpreters — they key
        the on-disk region store.  The child runs under a different
        PYTHONHASHSEED to prove hash-seed independence."""
        fn = build_paper_example().entry_function
        liveness = liveness_of(fn.cfg)
        local = [region_fingerprint(r, liveness)
                 for r in form_treegions(fn.cfg)]
        code = (
            "from repro.core import form_treegions\n"
            "from repro.ir.analysis_cache import liveness_of\n"
            "from repro.schedule.fingerprint import region_fingerprint\n"
            "from repro.workloads.paper_example import build_paper_example\n"
            "fn = build_paper_example().entry_function\n"
            "liveness = liveness_of(fn.cfg)\n"
            "for region in form_treegions(fn.cfg):\n"
            "    print(region_fingerprint(region, liveness))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "271828"
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in sys.path if p] + [env.get("PYTHONPATH", "")]
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, check=True,
        )
        assert out.stdout.split() == local


class TestMachineFingerprints:
    def test_distinguishes_issue_width(self):
        assert machine_fingerprint(VLIW_4U) != machine_fingerprint(VLIW_8U)

    def test_latency_fingerprint_shared_across_widths(self):
        # 4U and 8U differ only in issue width, which the DDG builder
        # never reads — they must share one latency fingerprint.
        assert latency_fingerprint(VLIW_4U) == latency_fingerprint(VLIW_8U)

    def test_latency_fingerprint_sees_latency_table(self):
        slow_loads = MachineModel(name="4U", issue_width=4,
                                  latencies={Opcode.LD: 5})
        assert latency_fingerprint(slow_loads) != latency_fingerprint(VLIW_4U)

    def test_latency_fingerprint_sees_btr(self):
        no_btr = MachineModel(name="4U", issue_width=4, use_btr=False)
        assert latency_fingerprint(no_btr) != latency_fingerprint(VLIW_4U)


class TestRegisterHash:
    """The precomputed ``Register.__hash__`` must stay consistent with
    equality — registers key the DDG's producer maps."""

    def test_hash_matches_field_tuple(self):
        register = Register(RegClass.GPR, 3)
        assert hash(register) == hash((register.rclass, register.index))

    def test_equal_registers_hash_equal(self):
        assert (hash(Register(RegClass.PRED, 1))
                == hash(Register(RegClass.PRED, 1)))
        assert Register(RegClass.PRED, 1) == Register(RegClass.PRED, 1)

    def test_pickle_round_trip(self):
        import pickle

        register = Register(RegClass.BTR, 2)
        revived = pickle.loads(pickle.dumps(register))
        assert revived == register
        assert hash(revived) == hash(register)
        assert {register: "x"}[revived] == "x"
