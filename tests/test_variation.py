"""Tests for the profile-variation machinery (evaluation.variation)."""

import pytest

from repro.interp import profile_program
from repro.lang import compile_source
from repro.machine import VLIW_4U
from repro.evaluation import treegion_scheme
from repro.evaluation.variation import (
    edge_probabilities,
    perturb_profile,
    restore_weights,
    snapshot_weights,
    solve_weights,
    time_under_current_weights,
    variation_study,
)
from repro.workloads.specint import build_benchmark

from tests.helpers import loop_function

SOURCE = """
func main(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i % 3 == 0) { acc = acc + i * 2; }
        else { acc = acc - 1; }
        if (acc > 50) { acc = acc - 25; }
    }
    return acc;
}
"""


def _profiled():
    program = compile_source(SOURCE)
    profile_program(program, inputs=[[30]])
    return program


class TestFlowSolver:
    def test_probabilities_normalize(self):
        program = _profiled()
        cfg = program.entry_function.cfg
        probabilities = edge_probabilities(cfg)
        for block in cfg.blocks():
            if block.out_edges:
                total = sum(probabilities[id(e)] for e in block.out_edges)
                assert total == pytest.approx(1.0)

    def test_solver_reproduces_measured_profile(self):
        """Solving with the measured probabilities recovers the measured
        weights — including through loops (geometric series)."""
        program = _profiled()
        cfg = program.entry_function.cfg
        probabilities = edge_probabilities(cfg)
        blocks, edges = solve_weights(cfg, probabilities, cfg.entry.weight)
        for block in cfg.blocks():
            assert blocks[block.bid] == pytest.approx(block.weight, rel=1e-9)
            for edge in block.out_edges:
                assert edges[id(edge)] == pytest.approx(edge.weight, rel=1e-9)

    def test_solver_handles_plain_loop(self):
        fn = loop_function()
        entry, header, body, exit_bb = fn.cfg.blocks()
        # 10 iterations expected.
        entry.weight = 1.0
        entry.fallthrough_edge.weight = 1.0
        header.taken_edge.weight = 10.0
        header.fallthrough_edge.weight = 1.0
        body.taken_edge.weight = 10.0
        probabilities = edge_probabilities(fn.cfg)
        blocks, _ = solve_weights(fn.cfg, probabilities, 1.0)
        assert blocks[header.bid] == pytest.approx(11.0)
        assert blocks[body.bid] == pytest.approx(10.0)
        assert blocks[exit_bb.bid] == pytest.approx(1.0)

    def test_apply_and_snapshot_roundtrip(self):
        program = _profiled()
        cfg = program.entry_function.cfg
        snapshot = snapshot_weights(cfg)
        perturb_profile(cfg, seed=3)
        changed = any(
            abs(edge.weight - snapshot[1][id(edge)]) > 1e-9
            for block in cfg.blocks() for edge in block.out_edges
        )
        assert changed
        restore_weights(cfg, snapshot)
        for block in cfg.blocks():
            assert block.weight == snapshot[0][block.bid]


class TestPerturbation:
    def test_perturbation_conserves_flow(self):
        program = _profiled()
        cfg = program.entry_function.cfg
        entry_weight = cfg.entry.weight
        perturb_profile(cfg, seed=7)
        # Entry flow preserved; every block's in-flow equals its weight.
        assert cfg.entry.weight == pytest.approx(entry_weight)
        for block in cfg.blocks():
            if block is cfg.entry:
                continue
            inflow = sum(e.weight for e in block.in_edges)
            assert inflow == pytest.approx(block.weight, rel=1e-6, abs=1e-6)

    def test_perturbation_deterministic_per_seed(self):
        a, b = _profiled(), _profiled()
        perturb_profile(a.entry_function.cfg, seed=11)
        perturb_profile(b.entry_function.cfg, seed=11)
        for block_a, block_b in zip(a.entry_function.cfg.blocks(),
                                    b.entry_function.cfg.blocks()):
            assert block_a.weight == pytest.approx(block_b.weight)


class TestVariationStudy:
    def test_dep_height_is_profile_invariant(self):
        """Treegion formation ignores profiles and the dependence-height
        heuristic uses no weights: its degradation is exactly 1.0."""
        program = build_benchmark("compress")
        results = variation_study(
            program, treegion_scheme, VLIW_4U,
            heuristics=["dep_height"], seeds=[1, 2, 3],
        )
        assert results["dep_height"]["degradation"] == pytest.approx(1.0)

    def test_profile_guided_heuristics_degrade_bounded(self):
        program = build_benchmark("compress")
        results = variation_study(
            program, treegion_scheme, VLIW_4U,
            heuristics=["global_weight", "exit_count"], seeds=[1, 2],
        )
        for heuristic, row in results.items():
            assert row["degradation"] >= 0.999, heuristic
            assert row["degradation"] < 1.5, heuristic

    def test_time_under_current_weights_matches_estimator(self):
        from repro.core import form_treegions
        from repro.schedule import ScheduleOptions
        from repro.schedule.scheduler import schedule_partition

        program = _profiled()
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        schedules = schedule_partition(partition, VLIW_4U, ScheduleOptions())
        direct = sum(s.weighted_time for s in schedules)
        assert time_under_current_weights(schedules) == pytest.approx(direct)
