"""Tests for the auxiliary tooling: pressure stats, DOT export, CLI."""

import pytest

from repro.core import form_treegions
from repro.ir.dot import cfg_to_dot
from repro.machine import VLIW_4U, VLIW_8U
from repro.regions import form_basic_block_regions
from repro.schedule import ScheduleOptions, schedule_region
from repro.schedule.scheduler import schedule_partition
from repro.schedule.stats import aggregate_pressure, measure_schedule
from repro.cli import main

from tests.helpers import diamond_function
from tests.test_regions_formation import build_figure1_like


class TestPressureStats:
    def _schedule(self, machine=VLIW_4U):
        fn = build_figure1_like()
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        return schedule_region(region, machine,
                               ScheduleOptions(heuristic="global_weight"))

    def test_pressure_positive_and_bounded(self):
        schedule = self._schedule()
        stats = measure_schedule(schedule, VLIW_4U)
        assert stats.max_live_gpr >= 1
        assert stats.max_live_pred >= 1
        total_regs = len({
            r for s in schedule.all_ops() for r in s.op.defined_registers()
        }) + len({
            r for s in schedule.all_ops() for r in s.op.used_registers()
        })
        assert stats.max_live_gpr <= total_regs

    def test_utilization_in_unit_interval(self):
        for machine in (VLIW_4U, VLIW_8U):
            stats = measure_schedule(self._schedule(machine), machine)
            assert 0.0 < stats.utilization <= 1.0

    def test_wider_machine_lower_utilization(self):
        narrow = measure_schedule(self._schedule(VLIW_4U), VLIW_4U)
        wide = measure_schedule(self._schedule(VLIW_8U), VLIW_8U)
        assert wide.utilization <= narrow.utilization + 1e-9

    def test_aggregate_combines_regions(self):
        fn = build_figure1_like()
        partition = form_basic_block_regions(fn.cfg)
        schedules = schedule_partition(partition, VLIW_4U, ScheduleOptions())
        stats = aggregate_pressure(schedules, VLIW_4U)
        assert stats.op_count == sum(s.op_count for s in schedules)
        assert stats.length == sum(s.length for s in schedules)

    def test_multipath_pressure_at_least_single_path(self):
        """Renamed multi-path scheduling keeps at least as many values
        live as basic-block scheduling of the same code."""
        fn = build_figure1_like()
        tree = schedule_partition(form_treegions(fn.cfg), VLIW_8U,
                                  ScheduleOptions(heuristic="global_weight"))
        bb = schedule_partition(form_basic_block_regions(fn.cfg), VLIW_8U,
                                ScheduleOptions())
        tree_stats = aggregate_pressure(tree, VLIW_8U)
        bb_stats = aggregate_pressure(bb, VLIW_8U)
        assert tree_stats.max_live_gpr >= bb_stats.max_live_gpr


class TestDotExport:
    def test_contains_all_blocks_and_edges(self):
        fn = diamond_function()
        dot = cfg_to_dot(fn.cfg)
        for block in fn.cfg.blocks():
            assert f"bb{block.bid}" in dot
        # One edge statement per CFG edge (op labels also contain "->",
        # so count the bracketed edge lines specifically).
        edge_lines = [line for line in dot.splitlines()
                      if "-> bb" in line and "[style=" in line]
        assert len(edge_lines) == sum(
            len(b.out_edges) for b in fn.cfg.blocks()
        )

    def test_regions_become_clusters(self):
        fn = build_figure1_like()
        partition = form_treegions(fn.cfg)
        dot = cfg_to_dot(fn.cfg, partition=partition)
        assert dot.count("subgraph cluster_") == len(partition)

    def test_is_balanced_digraph(self):
        fn = diamond_function()
        dot = cfg_to_dot(fn.cfg)
        assert dot.startswith("digraph")
        assert dot.count("{") == dot.count("}")


class TestCLI:
    SOURCE = """
    func main(a) {
        var x = 0;
        if (a > 3) { x = a * 2; } else { x = a + 10; }
        return x;
    }
    """

    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "prog.mc"
        path.write_text(self.SOURCE)
        return str(path)

    def test_compile_roundtrip(self, source_file, capsys, tmp_path):
        assert main(["compile", source_file]) == 0
        text = capsys.readouterr().out
        assert text.startswith("program entry=main")
        # The dumped IR is itself a valid CLI input.
        ir_path = tmp_path / "prog.ir"
        ir_path.write_text(text)
        assert main(["run", str(ir_path), "--args", "5"]) == 0

    def test_run_reports_match(self, source_file, capsys):
        assert main(["run", source_file, "--args", "9",
                     "--scheme", "treegion-td"]) == 0
        out = capsys.readouterr().out
        assert "interpreter result: 18" in out
        assert "[OK]" in out

    def test_schedule_prints_multiops(self, source_file, capsys):
        assert main(["schedule", source_file, "--args", "1",
                     "--machine", "8U"]) == 0
        out = capsys.readouterr().out
        assert "estimated time:" in out
        assert "retires @ cycle" in out

    def test_dot_command(self, source_file, capsys):
        assert main(["dot", source_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph main")

    def test_bench_subset(self, capsys):
        assert main(["bench", "--benchmarks", "compress",
                     "--schemes", "bb,treegion", "--machine", "4U"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "x" in out

    def test_bad_machine_rejected(self, source_file, capsys):
        # Exit-code contract: bad invocations return 2 with one error
        # line on stderr (full sweep in tests/test_cli_exit_codes.py).
        assert main(["run", source_file, "--machine", "potato"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    @pytest.mark.parametrize("scheme", ["bb", "slr", "superblock",
                                        "treegion", "treegion-td",
                                        "hyperblock"])
    def test_every_scheme_runs(self, source_file, capsys, scheme):
        assert main(["run", source_file, "--args", "2",
                     "--scheme", scheme]) == 0
        assert "[OK]" in capsys.readouterr().out
