"""Tests for superblock formation and treegion tail duplication (Fig. 11)."""

import pytest

from repro.core import TreegionLimits, form_treegions_td
from repro.ir import verify_function
from repro.ir.clone import clone_function
from repro.regions import (
    SuperblockLimits,
    code_expansion,
    form_superblocks,
)

from tests.helpers import diamond_function, loop_function, switch_function
from tests.test_regions_formation import build_figure1_like


class TestSuperblockFormation:
    def test_covers_and_verifies(self):
        fn = build_figure1_like()
        original_ops = fn.cfg.total_ops
        partition = form_superblocks(fn.cfg)
        partition.verify_covering(fn.cfg)
        verify_function(fn)
        assert code_expansion(original_ops, fn.cfg) >= 1.0

    def test_main_trace_is_single_entry(self):
        fn = build_figure1_like(35, 25, 40)
        partition = form_superblocks(fn.cfg)
        for region in partition:
            for block in region.blocks[1:]:
                assert len(block.in_edges) == 1, (
                    f"superblock member bb{block.bid} has a side entrance"
                )

    def test_heaviest_path_becomes_superblock(self):
        fn = build_figure1_like(35, 25, 40)
        blocks = {b.name: b for b in fn.cfg.blocks()}
        partition = form_superblocks(fn.cfg)
        # The hottest trace seeded at bb1 (weight 100) follows bb2 -> bb3;
        # bb5 is NOT mutually-most-likely (it also receives bb4's flow)...
        top = partition.region_of(blocks["bb1"])
        names = [b.name for b in top.blocks]
        assert names[:2] == ["bb1", "bb2"]
        assert "bb3" in names

    def test_tail_duplication_removes_merge(self):
        """A diamond whose join is heavier along one arm gets the join
        duplicated into the hot trace."""
        fn = diamond_function()
        entry, then_bb, else_bb, join = fn.cfg.blocks()
        entry.weight = 100
        then_bb.weight = 90
        else_bb.weight = 10
        join.weight = 100
        entry.taken_edge.weight = 90
        entry.fallthrough_edge.weight = 10
        then_bb.taken_edge.weight = 90
        else_bb.fallthrough_edge.weight = 10
        before = fn.cfg.total_ops
        partition = form_superblocks(fn.cfg, SuperblockLimits(expansion_limit=2.0))
        verify_function(fn)
        # join had two in-edges; the hot trace absorbed it, so a duplicate
        # must exist and code expanded.
        assert fn.cfg.total_ops > before
        top = partition.region_of(entry)
        assert join in top

    def test_expansion_limit_respected(self):
        fn = build_figure1_like()
        before = fn.cfg.total_ops
        limits = SuperblockLimits(expansion_limit=1.0)  # no budget at all
        form_superblocks(fn.cfg, limits)
        assert fn.cfg.total_ops == before

    def test_loop_not_unrolled(self):
        fn = loop_function()
        entry, header, body, exit_bb = fn.cfg.blocks()
        header.weight = body.weight = 100
        header.taken_edge.weight = 99
        body.taken_edge.weight = 99
        before = len(fn.cfg)
        form_superblocks(fn.cfg)
        # The trace may include header+body but must not clone them around
        # the back edge.
        origins = [b.origin for b in fn.cfg.blocks()]
        assert len(origins) == len(set(origins)) or len(fn.cfg) <= before + 1


class TestTreegionTailDuplication:
    def test_figure12_duplicates_bb5(self):
        """Figure 12: bb5 is tail duplicated and both copies absorbed."""
        fn = build_figure1_like(35, 25, 40)
        partition = form_treegions_td(fn.cfg, TreegionLimits(code_expansion=3.0))
        verify_function(fn)
        partition.verify_covering(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        blocks = {b.name for b in top.blocks}
        # With a generous limit the whole CFG collapses into one treegion:
        # bb5 duplicated for both incoming paths, bb9 duplicated as needed.
        assert "bb5" in blocks and "bb5.dup" in blocks
        # Tree invariants hold after duplication.
        top.check_invariants()

    def test_duplication_preserves_ir_validity(self):
        for make in (diamond_function, switch_function, loop_function):
            fn = make()
            form_treegions_td(fn.cfg)
            verify_function(fn)

    def test_expansion_limit_binds(self):
        fn = build_figure1_like()
        original = fn.cfg.total_ops
        tight = clone_function(fn)
        loose = clone_function(fn)
        form_treegions_td(tight.cfg, TreegionLimits(code_expansion=1.0))
        form_treegions_td(loose.cfg, TreegionLimits(code_expansion=3.0))
        assert tight.cfg.total_ops == original  # 1.0 allows no duplication
        assert loose.cfg.total_ops >= tight.cfg.total_ops

    def test_higher_limit_grows_regions(self):
        """Table 3's shape: expansion grows with the limit."""
        base = build_figure1_like()
        sizes = {}
        for limit in (1.0, 2.0, 3.0):
            fn = clone_function(base)
            form_treegions_td(fn.cfg, TreegionLimits(code_expansion=limit))
            sizes[limit] = fn.cfg.total_ops
        assert sizes[1.0] <= sizes[2.0] <= sizes[3.0]

    def test_path_count_limit(self):
        fn = switch_function(n_cases=10)
        # Every case jumps to the join; with duplication the join would be
        # copied once per path.  A path limit of 4 must stop that early.
        partition = form_treegions_td(fn.cfg, TreegionLimits(path_count=4))
        top = partition.region_of(fn.cfg.entry)
        assert top.path_count <= max(4, 11)  # never exceeds pre-dup paths

    def test_merge_count_limit(self):
        fn = switch_function(n_cases=8)
        join = [b for b in fn.cfg.blocks() if b.name == "join"][0]
        assert join.merge_count == 9
        partition = form_treegions_td(
            fn.cfg, TreegionLimits(merge_count=4, code_expansion=5.0)
        )
        # join has 9 in-edges > 4 and has no successors... it ends in RET,
        # so the function-exit exemption applies and duplication proceeds.
        top = partition.region_of(fn.cfg.entry)
        dup_names = [b.name for b in top.blocks if "dup" in b.name]
        assert dup_names, "function-exit saplings should still duplicate"

    def test_merge_count_limit_blocks_inner_merges(self):
        fn = switch_function(n_cases=8)
        join = [b for b in fn.cfg.blocks() if b.name == "join"][0]
        # Give join a successor so the exemption no longer applies.
        ret_op = join.ops[-1]
        assert ret_op.opcode.value == "ret"
        join.ops.pop()
        tail = fn.cfg.new_block("tail")
        fn.cfg.add_edge(join, tail, weight=0.0)
        fn.cfg.make_return(tail)
        partition = form_treegions_td(
            fn.cfg, TreegionLimits(merge_count=4, code_expansion=5.0)
        )
        top = partition.region_of(fn.cfg.entry)
        assert all("dup" not in b.name for b in top.blocks)

    def test_loops_never_unrolled(self):
        fn = loop_function()
        before_blocks = len(fn.cfg)
        form_treegions_td(fn.cfg, TreegionLimits(code_expansion=10.0,
                                                 path_count=100))
        # The loop body/header must not be replicated around the back edge.
        origin_counts = {}
        for block in fn.cfg.blocks():
            origin_counts[block.origin] = origin_counts.get(block.origin, 0) + 1
        header = fn.cfg.blocks()[1]
        assert origin_counts[header.origin] == 1

    def test_weights_conserved_through_duplication(self):
        fn = build_figure1_like(35, 25, 40)
        total_exit_weight_before = 100.0
        form_treegions_td(fn.cfg, TreegionLimits(code_expansion=3.0))
        ret_blocks = [b for b in fn.cfg.blocks()
                      if b.terminator is not None
                      and b.terminator.opcode.value == "ret"]
        assert sum(b.weight for b in ret_blocks) == pytest.approx(
            total_exit_weight_before
        )
