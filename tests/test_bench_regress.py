"""The ``tools/bench_regress.py`` CI gate.

Fabricated snapshots drive every check: the scale-invariant contracts
(obs overhead bound, memo serving, zero chaos drops, percentile
agreement) must fire regardless of baseline, and the tolerance bands
must fire only when the fresh run's scale matches the baseline's.
"""

from __future__ import annotations

import importlib.util
import io
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_regress",
    pathlib.Path(__file__).parent.parent / "tools" / "bench_regress.py")
bench_regress = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_regress)


def _obs(**overrides):
    snap = {"grid_cells": 192, "overhead_ratio": 1.04, "span_count": 241}
    snap.update(overrides)
    return snap


def _sched(**overrides):
    snap = {"grid_cells": 192, "warm_speedup": 4.0,
            "memo": {"cold_misses": 100, "warm_hits": 300}}
    snap.update(overrides)
    return snap


def _load(**overrides):
    latency = {"count": 2000, "p50": 0.0005, "p95": 0.001, "p99": 0.002}
    snap = {
        "grid_cells": 192, "clients": 1000, "sustained_qps": 200.0,
        "latency": dict(latency), "warm_latency": dict(latency),
        "latency_hist_us": {
            "all": {"count": 2000, "p50": 511, "p95": 1023, "p99": 2047},
            "warm": {"count": 2000, "p50": 511, "p95": 1023,
                     "p99": 2047},
        },
        "warm_p99_bound_seconds": 0.088,
        "identical_to_direct": True,
        "chaos": {"dropped_on_shard_kill": 0, "shard_kills": 1},
    }
    snap.update(overrides)
    return snap


class TestContracts:
    def test_clean_snapshots_pass(self):
        assert not bench_regress.check_obs(_obs())
        assert not bench_regress.check_sched(_sched())
        assert not bench_regress.check_load(_load())

    def test_obs_overhead_hard_bound(self):
        (violation,) = bench_regress.check_obs(_obs(overhead_ratio=1.6))
        assert "1.5x bound" in violation

    def test_sched_memo_must_serve(self):
        violations = bench_regress.check_sched(_sched(
            warm_speedup=0.8,
            memo={"cold_misses": 100, "warm_hits": 10}))
        assert len(violations) == 2
        assert any("warm_speedup" in v for v in violations)
        assert any("not serving" in v for v in violations)

    def test_load_chaos_and_p99(self):
        chaos = {"dropped_on_shard_kill": 3, "shard_kills": 0}
        warm = {"count": 10, "p50": 0.1, "p95": 0.1, "p99": 0.2}
        violations = bench_regress.check_load(_load(
            chaos=chaos, warm_latency=warm, latency_hist_us={}))
        assert any("dropped" in v for v in violations)
        assert any("shard kills" in v for v in violations)
        assert any("exceeds its" in v for v in violations)

    def test_percentile_agreement_gate(self):
        # A histogram p99 above 2x the exact p99 breaks the agreement
        # contract even though every latency bound still holds.
        snap = _load()
        snap["latency_hist_us"]["warm"]["p99"] = 8191
        (violation,) = bench_regress.check_load(snap)
        assert "agreement bound" in violation
        # Empty splits are skipped, not compared.
        snap = _load()
        snap["latency_hist_us"]["warm"] = {"count": 0, "p50": None,
                                           "p95": None, "p99": None}
        assert not bench_regress.check_load(snap)


class TestToleranceBands:
    def test_bands_apply_only_at_matched_scale(self):
        slow = _load(sustained_qps=10.0)
        # Same scale: the qps floor fires.
        (violation,) = bench_regress.check_load(slow, _load())
        assert "fell below" in violation
        # Shrunken CI run (different client count): band skipped.
        assert not bench_regress.check_load(
            slow, _load(clients=50, sustained_qps=500.0))

    def test_obs_drift_band(self):
        fresh = _obs(overhead_ratio=1.4)
        (violation,) = bench_regress.check_obs(fresh, _obs())
        assert "baseline" in violation
        assert not bench_regress.check_obs(
            fresh, _obs(grid_cells=8, overhead_ratio=1.0))

    def test_sched_speedup_floor(self):
        fresh = _sched(warm_speedup=1.5)
        (violation,) = bench_regress.check_sched(
            fresh, _sched(warm_speedup=4.0))
        assert "0.5x the baseline" in violation
        assert not bench_regress.check_sched(
            fresh, _sched(warm_speedup=2.0))


class TestRunner:
    def _write(self, directory, obs=None, sched=None, load=None):
        directory.mkdir(exist_ok=True)
        for name, snap in (("BENCH_obs.json", obs or _obs()),
                           ("BENCH_sched.json", sched or _sched()),
                           ("BENCH_load.json", load or _load())):
            (directory / name).write_text(json.dumps(snap))

    def test_run_clean_tree(self, tmp_path):
        fresh = tmp_path / "fresh"
        baseline = tmp_path / "baseline"
        self._write(fresh)
        self._write(baseline)
        out = io.StringIO()
        violations = bench_regress.run(str(fresh), str(baseline),
                                       out=out)
        assert violations == []
        report = out.getvalue()
        assert report.count("ok") == 3
        assert "(baseline)" in report

    def test_run_flags_regressions_and_missing_files(self, tmp_path):
        fresh = tmp_path / "fresh"
        self._write(fresh, obs=_obs(overhead_ratio=2.0))
        (fresh / "BENCH_sched.json").unlink()
        out = io.StringIO()
        violations = bench_regress.run(
            str(fresh), str(tmp_path / "nonexistent"), out=out)
        assert any("snapshot missing" in v for v in violations)
        assert any("1.5x bound" in v for v in violations)
        assert "REGRESSION" in out.getvalue()
        assert "FAIL" in out.getvalue()

    def test_main_exit_codes(self, tmp_path, capsys):
        fresh = tmp_path / "fresh"
        baseline = tmp_path / "baseline"
        self._write(fresh)
        self._write(baseline)
        assert bench_regress.main(
            ["--fresh-dir", str(fresh),
             "--baseline-dir", str(baseline)]) == 0
        self._write(fresh, load=_load(identical_to_direct=False))
        assert bench_regress.main(
            ["--fresh-dir", str(fresh),
             "--baseline-dir", str(baseline)]) == 1
        assert "diverged" in capsys.readouterr().out

    def test_committed_snapshots_pass_the_gate(self):
        """The real repo snapshots satisfy their own contracts."""
        repo = bench_regress.REPO_ROOT
        for name, check in bench_regress.CHECKS:
            snap = json.loads((repo / name).read_text())
            assert check(snap) == [], name
