"""Tests for the dynamic-scheduling substrate (trace + OoO engine)."""

import pytest

from repro.interp import Interpreter
from repro.lang import compile_source
from repro.machine import universal_machine
from repro.ir.types import Opcode
from repro.dynamic import (
    DynamicParams,
    build_dependencies,
    collect_trace,
    simulate_trace,
)
from repro.dynamic.ooo import dataflow_limit
from repro.workloads.minic_programs import (
    build_minic_program,
    minic_program_names,
)


class TestTraceCollection:
    def test_trace_matches_execution(self):
        program = compile_source(
            "func main(n) { var s = 0; "
            "for (var i = 0; i < n; i = i + 1) { s = s + i; } return s; }"
        )
        result, trace = collect_trace(program, [5])
        assert result == Interpreter(program).run([5])
        assert trace, "executed ops must be recorded"
        # The loop body executes 5 times: its add appears 5 times.
        adds = [t for t in trace if t.opcode is Opcode.ADD]
        assert len(adds) >= 5

    def test_memory_ops_carry_addresses(self):
        program = compile_source("""
            array a[4];
            func main(i) { a[i] = 7; return a[i]; }
        """)
        _result, trace = collect_trace(program, [2])
        store = [t for t in trace if t.is_store][0]
        load = [t for t in trace if t.is_load][0]
        assert store.address == load.address == 2

    def test_calls_become_linkage_moves(self):
        program = compile_source("""
            func double(x) { return x * 2; }
            func main(a) { return double(a) + 1; }
        """)
        result, trace = collect_trace(program, [4])
        assert result == 9
        moves = [t for t in trace if t.is_move]
        # One argument move + one return move.
        assert len(moves) == 2

    def test_activations_do_not_alias(self):
        """Recursive calls reuse virtual register names; the qualified
        trace must keep their dependences separate."""
        program = compile_source("""
            func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
            func main(n) { return fact(n); }
        """)
        _result, trace = collect_trace(program, [5])
        producers = build_dependencies(trace)
        # Every producer index precedes its consumer.
        for i, deps in enumerate(producers):
            assert all(p < i for p in deps)


class TestDependencies:
    def test_disambiguation_removes_false_deps(self):
        program = compile_source("""
            array a[8];
            func main(n) {
                a[0] = 1;
                a[1] = 2;
                var x = a[0];
                var y = a[1];
                return x + y;
            }
        """)
        _res, trace = collect_trace(program, [0])
        precise = build_dependencies(trace, disambiguate_memory=True)
        serialized = build_dependencies(trace, disambiguate_memory=False)
        loads = [t.seq for t in trace if t.is_load]
        stores = [t.seq for t in trace if t.is_store]
        # Serialized: every load depends on the LAST store before it.
        for load in loads:
            before = [s for s in stores if s < load]
            if before:
                assert max(before) in serialized[load]
        # Precise: the first load depends only on the store to address 0.
        first_load = loads[0]
        assert precise[first_load] != serialized[first_load] or \
            len(stores) == 1


class TestOoOEngine:
    def _trace(self, name="hash"):
        program, args = build_minic_program(name)
        _result, trace = collect_trace(program, args)
        return trace

    def test_wider_is_never_slower(self):
        trace = self._trace()
        cycles = [
            simulate_trace(trace, DynamicParams(issue_width=w, window=64)).cycles
            for w in (1, 2, 4, 8)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_bigger_window_is_never_slower(self):
        trace = self._trace("sort")
        cycles = [
            simulate_trace(trace, DynamicParams(issue_width=4, window=w)).cycles
            for w in (4, 16, 64, 256)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_bounded_by_dataflow_limit_and_ops(self):
        for name in minic_program_names():
            program, args = build_minic_program(name)
            _result, trace = collect_trace(program, args)
            result = simulate_trace(trace, DynamicParams(issue_width=8,
                                                         window=128))
            assert result.cycles >= dataflow_limit(trace)
            # 1-wide with huge window cannot beat 1 op/cycle.
            serial = simulate_trace(trace, DynamicParams(issue_width=1,
                                                         window=4))
            real_ops = sum(1 for t in trace if not t.is_move)
            assert serial.cycles >= real_ops

    def test_perfect_disambiguation_helps_or_ties(self):
        trace = self._trace("sort")
        precise = simulate_trace(trace, DynamicParams(issue_width=4,
                                                      window=32))
        serialized = simulate_trace(
            trace,
            DynamicParams(issue_width=4, window=32,
                          disambiguate_memory=False),
        )
        assert precise.cycles <= serialized.cycles

    def test_ipc_reported(self):
        trace = self._trace("fib")
        result = simulate_trace(trace, DynamicParams(issue_width=4,
                                                     window=32))
        assert 0 < result.ipc <= 4.0

    def test_chain_bound_program_hits_dataflow_limit(self):
        """fib is one long dependence chain: window/width do not help and
        the OoO core lands within ~10% of the dataflow limit."""
        program, args = build_minic_program("fib")
        _result, trace = collect_trace(program, args)
        narrow = simulate_trace(trace, DynamicParams(issue_width=4,
                                                     window=16))
        wide = simulate_trace(trace, DynamicParams(issue_width=8,
                                                   window=256))
        limit = dataflow_limit(trace)
        assert wide.cycles <= narrow.cycles
        assert wide.cycles <= 1.2 * limit

    def test_empty_trace(self):
        result = simulate_trace([], DynamicParams())
        assert result.cycles == 0 and result.ipc == 0.0
