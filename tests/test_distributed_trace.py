"""Distributed tracing across the fleet (:mod:`repro.obs.distributed`).

Unit coverage of the tracer/collector pair, then the two tests the
fleet observability contract hangs on: a cold soak over a 2-shard TCP
fleet whose merged trace shows every client root span fanning into
frontend → shard → worker hops, and a chaos run (shard killed
mid-batch) whose merged trace still carries the retried request's full
span tree, marked ``supervisor.restart``.
"""

from __future__ import annotations

import functools
import json

import pytest

from repro.evaluation.engine import GridCell
from repro.obs.distributed import (
    NULL_DTRACER,
    DistributedTracer,
    merge_traces,
    new_span_id,
    new_trace_id,
    read_span_file,
)
from repro.serve import JobRequest
from repro.serve.frontend import FrontendServer
from repro.serve.soak import run_soak

from tests.test_fleet import (
    _NO_SLEEP,
    _fast_fleet,
    _gated_worker,
    _grid,
    _owners,
    _wait_for,
)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        value = self.now
        self.now += 0.5
        return value


class TestTracerUnit:
    def test_ids_are_fresh_and_well_formed(self):
        assert new_trace_id() != new_trace_id()
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16

    def test_span_export_and_context_fields(self, tmp_path):
        tracer = DistributedTracer(str(tmp_path), "client",
                                   clock=FakeClock())
        with tracer.start_span("client.compile", benchmark="go") as span:
            span.annotate("marker")
            span.annotate("marker")  # annotations dedup
            span.set(shard=3)
        child = tracer.start_span("hop", trace_id=span.trace_id,
                                  parent_span_id=span.span_id)
        child.finish(outcome="ok")
        child.finish(outcome="overwritten")  # finish is idempotent
        tracer.close()

        (path,) = list(tmp_path.glob("trace-client-*.jsonl"))
        rows = read_span_file(str(path))
        assert [r.name for r in rows] == ["client.compile", "hop"]
        root, hop = rows
        assert root.parent_span_id is None
        assert root.annotations == ["marker"]
        assert root.args == {"benchmark": "go", "shard": 3}
        assert root.end > root.start
        assert hop.trace_id == root.trace_id
        assert hop.parent_span_id == root.span_id
        assert hop.args == {"outcome": "ok"}

    def test_exception_annotates_error(self, tmp_path):
        tracer = DistributedTracer(str(tmp_path), "client")
        with pytest.raises(RuntimeError):
            with tracer.start_span("failing"):
                raise RuntimeError("boom")
        tracer.close()
        (span,) = merge_traces(str(tmp_path)).spans
        assert "error" in span.annotations
        assert span.args["error"] == "RuntimeError: boom"

    def test_disabled_and_null_tracers_propagate_nothing(self, tmp_path):
        span = NULL_DTRACER.start_span("anything", a=1)
        assert span.trace_id is None and span.span_id is None
        with span:
            span.annotate("x")
        tracer = DistributedTracer(str(tmp_path), "client")
        tracer.set_enabled(False)
        disabled = tracer.start_span("skipped")
        assert disabled.span_id is None
        disabled.finish()
        tracer.close()
        assert not list(tmp_path.glob("trace-*.jsonl"))

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        tracer = DistributedTracer(str(tmp_path), "worker", shard=1)
        tracer.start_span("ok").finish()
        tracer.close()
        (path,) = list(tmp_path.glob("trace-worker-*.jsonl"))
        with open(path, "a") as handle:
            handle.write('{"trace": "t", "span": "truncat')
        rows = read_span_file(str(path))
        assert [r.name for r in rows] == ["ok"]
        assert rows[0].shard == 1


class TestMergedTrace:
    def _two_process_dir(self, tmp_path):
        clock = FakeClock()
        client = DistributedTracer(str(tmp_path), "client", clock=clock)
        fleet = DistributedTracer(str(tmp_path), "fleet", shard=0,
                                  clock=clock)
        root = client.start_span("client.compile")
        hop = fleet.start_span("shard.compile", trace_id=root.trace_id,
                               parent_span_id=root.span_id)
        hop.finish()
        root.finish()
        other = client.start_span("client.compile")
        other.finish()
        client.close()
        fleet.close()
        return root, hop, other

    def test_forest_queries(self, tmp_path):
        root, hop, other = self._two_process_dir(tmp_path)
        merged = merge_traces(str(tmp_path))
        assert len(merged) == 3
        assert merged.services() == ["client", "fleet"]
        assert merged.trace_ids() == [root.trace_id, other.trace_id]
        roots = merged.roots(root.trace_id)
        assert [r.span_id for r in roots] == [root.span_id]
        (child,) = merged.children(roots[0])
        assert child.span_id == hop.span_id
        (tree,) = merged.tree(root.trace_id)
        assert tree["name"] == "client.compile"
        assert tree["children"][0]["service"] == "fleet"
        assert tree["children"][0]["shard"] == 0
        assert merged.find(service="fleet")[0].name == "shard.compile"

    def test_chrome_export_has_tracks_and_flow_arrows(self, tmp_path):
        self._two_process_dir(tmp_path)
        merged = merge_traces(str(tmp_path))
        out = tmp_path / "merged.json"
        merged.write_chrome(str(out))
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"client (pid %d)" % merged.spans[0].pid,
                         "fleet shard 0"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        # One parent link -> one s/f flow pair on matching ids.
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]

    def test_merge_of_empty_dir_and_explicit_paths(self, tmp_path):
        assert len(merge_traces(str(tmp_path))) == 0
        assert merge_traces([]).to_chrome()["traceEvents"] == []


class TestFleetTraceEndToEnd:
    def test_cold_soak_trace_spans_all_four_services(self, tmp_path):
        """The acceptance shape: one merged timeline per cold request,
        client.compile -> frontend.request -> shard.compile ->
        worker.run_task, across a real 2-shard TCP fleet."""
        trace_dir = tmp_path / "traces"
        cells = _grid()
        fleet = _fast_fleet(tmp_path, trace_dir=str(trace_dir))
        server = FrontendServer(fleet, "tcp://127.0.0.1:0",
                                trace_dir=str(trace_dir))
        endpoint = server.start()
        try:
            report = run_soak(endpoint, cells, clients=4,
                              trace_dir=str(trace_dir))
        finally:
            server.stop()
            fleet.close()
        assert report.dropped == 0 and not report.errors

        merged = merge_traces(str(trace_dir))
        assert merged.services() == ["client", "fleet", "frontend",
                                     "worker"]
        # One trace per request, rooted at the client span.
        assert len(merged.trace_ids()) == len(cells)
        seen_shards = set()
        for trace_id in merged.trace_ids():
            (root,) = merged.roots(trace_id)
            assert (root.service, root.name) == ("client",
                                                 "client.compile")
            (frontend,) = merged.children(root)
            assert (frontend.service, frontend.name) == \
                ("frontend", "frontend.request")
            assert frontend.args["outcome"] == "ok"
            (shard,) = merged.children(frontend)
            assert (shard.service, shard.name) == ("fleet",
                                                   "shard.compile")
            assert shard.args["outcome"] == "ok"
            seen_shards.add(shard.args["shard"])
            workers = merged.children(shard)
            assert [w.name for w in workers] == ["worker.run_task"]
            assert workers[0].service == "worker"
            # Parent/child hops are causally ordered on the shared
            # wall clock.
            assert root.start <= frontend.start <= shard.start
        assert seen_shards == {0, 1}

    def test_warm_hit_traces_as_instant_fleet_span(self, tmp_path):
        trace_dir = tmp_path / "traces"
        cell = GridCell("compress", "treegion", "4U", "global_weight")
        fleet = _fast_fleet(tmp_path, trace_dir=str(trace_dir))
        try:
            cold = fleet.submit(JobRequest(cell=cell,
                                           trace_id=new_trace_id()))
            cold.result(120.0)
            warm_trace = new_trace_id()
            warm = fleet.submit(JobRequest(cell=cell,
                                           trace_id=warm_trace))
            assert warm.done and warm.source == "hot"
        finally:
            fleet.close()
        merged = merge_traces(str(trace_dir))
        (hot,) = merged.find(name="fleet.hot", trace_id=warm_trace)
        assert hot.args["source"] == "hot"
        # The hot hit never reached a shard or a worker.
        assert not merged.find(name="shard.compile",
                               trace_id=warm_trace)
        assert not merged.find(name="worker.run_task",
                               trace_id=warm_trace)


class TestChaosTrace:
    def test_killed_shard_trace_survives_with_restart_annotation(
            self, tmp_path):
        trace_dir = tmp_path / "traces"
        gate = str(tmp_path / "gate")
        cells = _grid()
        owners = _owners(cells)
        assert set(owners) == {0, 1}
        fleet = _fast_fleet(
            tmp_path, trace_dir=str(trace_dir), batch_size=1,
            service_kwargs={
                "worker": functools.partial(_gated_worker, gate),
                "sleep": _NO_SLEEP,
            },
        )
        traces = {}
        try:
            handles = []
            for cell in cells:
                trace_id = new_trace_id()
                traces[trace_id] = cell
                handles.append(fleet.submit(
                    JobRequest(cell=cell, trace_id=trace_id)))
            _wait_for(
                lambda: fleet.own_metrics.counters.get(
                    "serve.dispatches", 0) >= 2,
                message="both shards dispatching",
            )
            fleet.kill_shard(0, timeout=0.5)
            with open(gate, "w") as handle:
                handle.write("open\n")
            for handle in handles:
                handle.result(180.0)
        finally:
            fleet.close()

        merged = merge_traces(str(trace_dir))
        retried = merged.find(name="shard.compile",
                              annotation="supervisor.restart")
        assert retried, "no re-dispatched span carries the annotation"
        killed_owner_traces = {
            trace_id for trace_id, cell in traces.items()
            if _owners([cell])[0] == 0
        }
        assert {span.trace_id for span in retried} <= killed_owner_traces
        for span in retried:
            # The retried hop finished its work and its worker span
            # survived the earlier kill of the same content key.
            assert span.args["outcome"] == "ok"
            assert span.args["fleet_attempt"] >= 1
            workers = merged.children(span)
            assert [w.name for w in workers] == ["worker.run_task"]
        # The first, killed attempt of a retried key is also visible:
        # its dispatch span closed with a retry outcome.
        some_trace = retried[0].trace_id
        outcomes = [s.args.get("outcome")
                    for s in merged.find(name="shard.compile",
                                         trace_id=some_trace)]
        assert "retry" in outcomes and "ok" in outcomes
