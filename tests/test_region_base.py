"""Unit tests for the Region base class and machine models."""

import pytest

from repro.machine import (
    MachineModel,
    PAPER_MACHINES,
    SCALAR_1U,
    VLIW_4U,
    VLIW_8U,
    universal_machine,
)
from repro.ir import CFG, EdgeKind, Opcode
from repro.regions.region import Region, RegionPartition
from repro.util.errors import SchedulingError


def _tree_region():
    """root -> (a, b); a -> (c, d): a 5-block tree with CFG edges."""
    cfg = CFG()
    root, a, b, c, d = (cfg.new_block(n) for n in "racbd"[0:5])
    root, a, b, c, d = cfg.blocks()
    cfg.add_edge(root, a, EdgeKind.TAKEN)
    cfg.add_edge(root, b, EdgeKind.FALLTHROUGH)
    cfg.add_edge(a, c, EdgeKind.TAKEN)
    cfg.add_edge(a, d, EdgeKind.FALLTHROUGH)
    region = Region("test")
    region.add_block(root)
    region.add_block(a, parent=root)
    region.add_block(b, parent=root)
    region.add_block(c, parent=a)
    region.add_block(d, parent=a)
    return cfg, region, (root, a, b, c, d)


class TestRegionStructure:
    def test_root_and_membership(self):
        _cfg, region, (root, a, b, c, d) = _tree_region()
        assert region.root is root
        assert all(blk in region for blk in (root, a, b, c, d))
        assert region.block_count == 5

    def test_paths_and_leaves(self):
        _cfg, region, (root, a, b, c, d) = _tree_region()
        assert {leaf.bid for leaf in region.leaves()} == {b.bid, c.bid, d.bid}
        assert region.path_count == 3
        paths = {path[-1].bid: [blk.bid for blk in path]
                 for path in region.paths()}
        assert paths[c.bid] == [root.bid, a.bid, c.bid]
        assert paths[b.bid] == [root.bid, b.bid]

    def test_depth_and_path_to(self):
        _cfg, region, (root, a, b, c, d) = _tree_region()
        assert region.depth(root) == 0
        assert region.depth(a) == 1
        assert region.depth(c) == 2
        assert [x.bid for x in region.path_to(d)] == [root.bid, a.bid, d.bid]

    def test_subtree_and_dominates(self):
        _cfg, region, (root, a, b, c, d) = _tree_region()
        assert {x.bid for x in region.subtree(a)} == {a.bid, c.bid, d.bid}
        assert region.dominates(root, d)
        assert region.dominates(a, c)
        assert not region.dominates(b, c)
        assert not region.dominates(c, a)

    def test_double_add_rejected(self):
        _cfg, region, blocks = _tree_region()
        with pytest.raises(SchedulingError):
            region.add_block(blocks[1], parent=blocks[0])

    def test_second_root_rejected(self):
        cfg = CFG()
        x, y = cfg.new_block(), cfg.new_block()
        region = Region("t")
        region.add_block(x)
        with pytest.raises(SchedulingError):
            region.add_block(y)  # no parent, root exists

    def test_foreign_parent_rejected(self):
        cfg = CFG()
        x, y, z = cfg.new_block(), cfg.new_block(), cfg.new_block()
        region = Region("t")
        region.add_block(x)
        with pytest.raises(SchedulingError):
            region.add_block(z, parent=y)

    def test_exit_to_own_root_counts(self):
        cfg = CFG()
        header, body = cfg.new_block(), cfg.new_block()
        cfg.append_op(header, Opcode.NOP)
        cfg.add_edge(header, body, EdgeKind.FALLTHROUGH, weight=5.0)
        back = cfg.new_op(Opcode.BRU, target=header.bid)
        body.ops.append(back)
        cfg.add_edge(body, header, EdgeKind.TAKEN, weight=5.0)
        region = Region("loop")
        region.add_block(header)
        region.add_block(body, parent=header)
        exits = region.exits()
        assert len(exits) == 1
        assert exits[0].target is header


class TestRegionPartition:
    def test_double_membership_rejected(self):
        cfg = CFG()
        x = cfg.new_block()
        r1, r2 = Region("a"), Region("b")
        r1.add_block(x)
        partition = RegionPartition("t")
        partition.add(r1)
        r2_dup = Region("b")
        r2_dup.add_block(x)
        with pytest.raises(SchedulingError):
            partition.add(r2_dup)

    def test_covering_detects_gaps(self):
        cfg = CFG()
        x, y = cfg.new_block(), cfg.new_block()
        partition = RegionPartition("t")
        region = Region("t")
        region.add_block(x)
        partition.add(region)
        with pytest.raises(SchedulingError):
            partition.verify_covering(cfg)


class TestMachineModels:
    def test_paper_latencies(self):
        for machine in (SCALAR_1U, VLIW_4U, VLIW_8U):
            assert machine.latency_of(Opcode.LD) == 2
            assert machine.latency_of(Opcode.FMUL) == 3
            assert machine.latency_of(Opcode.FDIV) == 9
            assert machine.latency_of(Opcode.ADD) == 1
            assert machine.latency_of(Opcode.ST) == 1

    def test_paper_machines_registry(self):
        assert PAPER_MACHINES["4U"].issue_width == 4
        assert PAPER_MACHINES["8U"].issue_width == 8

    def test_universal_machine_factory(self):
        machine = universal_machine(16)
        assert machine.issue_width == 16
        assert machine.name == "16U"
        assert machine.use_btr

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(name="bad", issue_width=0)

    def test_custom_latency_table(self):
        machine = MachineModel(name="c", issue_width=2,
                               latencies={Opcode.ADD: 5})
        assert machine.latency_of(Opcode.ADD) == 5
        assert machine.latency_of(Opcode.SUB) == 1

    def test_str(self):
        assert str(VLIW_4U) == "4U(4-issue)"
