"""Tests for the observability layer (:mod:`repro.obs`).

Covers the tracer (span nesting, exception unwinding, Chrome trace-event
and JSONL export), the metrics registry (histograms, merge semantics,
snapshot round-trips, the active-registry scope), the determinism
contract (serial vs ``jobs=2`` evaluation of the same grid serializes
byte-identically), the pipeline instrumentation points, the schedule
annotations on DOT export, and the CLI surfacing (``repro trace``,
``--metrics``/``--trace``/``--timings-json``).
"""

import json

import pytest

from repro import api
from repro.api import GridCell
from repro.cli import main
from repro.core import form_treegions
from repro.evaluation.runner import evaluate_program
from repro.evaluation.schemes import treegion_scheme, treegion_td_scheme
from repro.interp import profile_program
from repro.ir.dot import cfg_to_dot
from repro.machine import VLIW_4U
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Tracer,
    current_metrics,
    metrics_scope,
)
from repro.obs.metrics import observability_snapshot
from repro.schedule import ScheduleOptions
from repro.schedule.scheduler import schedule_partition
from repro.util.timing import StageTimer
from repro.workloads import build_benchmark

from tests.helpers import diamond_function, program_with
from tests.test_regions_formation import build_figure1_like


class FakeClock:
    """Deterministic clock: every read advances one 'second'."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        value = self.now
        self.now += 1.0
        return value


# ----------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_span_nesting_and_ordering(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", kind="test"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass

        spans = tracer.finished_spans()
        assert [s.name for s in spans] == ["outer", "first", "second"]
        outer, first, second = spans
        assert outer.parent is None and outer.depth == 0
        assert first.parent == outer.sid and first.depth == 1
        assert second.parent == outer.sid and second.depth == 1
        # Siblings are ordered by start time; the parent brackets both.
        assert first.start < second.start
        assert outer.start < first.start
        assert outer.end > second.end
        assert outer.args == {"kind": "test"}

    def test_span_durations_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        (span,) = tracer.finished_spans()
        assert span.duration == pytest.approx(1.0)

    def test_exception_still_closes_spans(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert [s.name for s in tracer.finished_spans()] == ["outer",
                                                             "inner"]
        # The stack fully unwound: a new span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].depth == 0

    def test_orphaned_span_unwound_by_ancestor_close(self):
        # A span opened directly (no context manager) is abandoned when
        # an ancestor closes: the stack must not leak it.
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            tracer._open("leaked", {})
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].name == "after"
        assert tracer.spans[-1].depth == 0

    def test_events_attach_to_current_span(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("root_event")
        with tracer.span("outer"):
            tracer.event("nested", n=3)
        assert len(tracer.events) == 2
        (_, parent0, name0, _), (_, parent1, name1, args1) = tracer.events
        assert (name0, parent0) == ("root_event", None)
        assert name1 == "nested"
        assert parent1 == tracer.spans[0].sid
        assert args1 == {"n": 3}

    def test_null_tracer_is_reusable_and_silent(self):
        handle = NULL_TRACER.span("anything", a=1)
        with handle:
            with NULL_TRACER.span("nested"):
                NULL_TRACER.event("e")
        # Same singleton handle every time — no allocation per call.
        assert NULL_TRACER.span("other") is handle

    def test_format_summary_mentions_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("alpha"):
            pass
        text = tracer.format_summary()
        assert "1 spans" in text
        assert "alpha" in text


class TestTraceExport:
    def _traced(self) -> Tracer:
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", machine="4U"):
            with tracer.span("inner"):
                pass
            tracer.event("ping", n=1)
        return tracer

    def test_chrome_schema_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().write_chrome(str(path))
        doc = json.loads(path.read_text())

        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert isinstance(events, list)

        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"

        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["outer", "inner"]
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid",
                    "tid", "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Timestamps are normalized: the first span starts at ts=0.
        assert complete[0]["ts"] == 0
        assert complete[0]["args"] == {"machine": "4U"}

        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["ping"]
        assert instants[0]["args"] == {"n": 1}

    def test_jsonl_export(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        self._traced().write_jsonl(str(path))
        lines = path.read_text().splitlines()
        rows = [json.loads(line) for line in lines]
        assert [row["name"] for row in rows] == ["outer", "inner"]
        assert rows[0]["parent"] is None and rows[0]["start"] == 0.0
        assert rows[1]["parent"] == rows[0]["sid"]
        assert rows[1]["depth"] == 1


# ----------------------------------------------------------------------
# Metrics


class TestHistogram:
    def test_observe_stats_and_buckets(self):
        histogram = Histogram()
        for value in (0, 1, 2, 3, 7):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.total == 13
        assert (histogram.min, histogram.max) == (0, 7)
        assert histogram.mean == pytest.approx(13 / 5)
        # bucket = bit_length: 0 -> 0, 1 -> 1, {2,3} -> 2, {4..7} -> 3.
        assert histogram.buckets == {0: 1, 1: 1, 2: 2, 3: 1}

    def test_merge_equals_union_of_observations(self):
        left, right, union = Histogram(), Histogram(), Histogram()
        for value in (1, 5, 9):
            left.observe(value)
            union.observe(value)
        for value in (2, 5):
            right.observe(value)
            union.observe(value)
        left.merge(right)
        assert left.as_dict() == union.as_dict()

    def test_dict_round_trip(self):
        histogram = Histogram()
        for value in (3, 3, 16):
            histogram.observe(value)
        clone = Histogram.from_dict(
            json.loads(json.dumps(histogram.as_dict()))
        )
        assert clone.as_dict() == histogram.as_dict()

    def test_empty_round_trip(self):
        clone = Histogram.from_dict(Histogram().as_dict())
        assert clone.count == 0 and clone.min is None


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("ops")
        metrics.inc("ops", 4)
        metrics.gauge("cache.hits", 17)
        metrics.observe("length", 8)
        assert metrics.counters["ops"] == 5
        assert metrics.gauges["cache.hits"] == 17
        assert metrics.histograms["length"].count == 1

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only_b")
        a.gauge("g", 10)
        b.gauge("g", 4)
        a.observe("h", 1)
        b.observe("h", 2)
        a.merge(b)
        assert a.counters == {"n": 5, "only_b": 1}
        assert a.gauges == {"g": 10}  # max, not sum
        assert a.histograms["h"].count == 2

    def test_snapshot_keys_sorted(self):
        metrics = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            metrics.inc(name)
        snap = metrics.snapshot()
        assert list(snap["counters"]) == ["alpha", "mid", "zeta"]

    def test_deterministic_snapshot_excludes_gauges(self):
        metrics = MetricsRegistry()
        metrics.inc("c")
        metrics.gauge("g", 1.0)
        metrics.observe("h", 2)
        snap = metrics.deterministic_snapshot()
        assert set(snap) == {"counters", "histograms"}

    def test_snapshot_merge_round_trip(self):
        # Two "workers" shipped home as snapshots must equal a direct
        # in-process merge — this is the engine's worker protocol.
        w1, w2 = MetricsRegistry(), MetricsRegistry()
        w1.inc("n", 2)
        w1.observe("h", 4)
        w2.inc("n", 5)
        w2.observe("h", 9)

        via_snapshots = MetricsRegistry()
        via_snapshots.merge_snapshot(json.loads(json.dumps(w1.snapshot())))
        via_snapshots.merge_snapshot(json.loads(json.dumps(w2.snapshot())))

        direct = MetricsRegistry()
        direct.merge(w1)
        direct.merge(w2)
        assert via_snapshots.snapshot() == direct.snapshot()

    def test_merge_is_commutative(self):
        w1, w2 = MetricsRegistry(), MetricsRegistry()
        w1.inc("a", 3)
        w1.observe("h", 1)
        w2.inc("a", 4)
        w2.inc("b")
        w2.observe("h", 6)
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(w1)
        ab.merge(w2)
        ba.merge(w2)
        ba.merge(w1)
        assert ab.snapshot() == ba.snapshot()

    def test_format_table_stable_order(self):
        metrics = MetricsRegistry()
        metrics.inc("b.counter", 2)
        metrics.inc("a.counter", 1)
        metrics.observe("h.hist", 3)
        metrics.gauge("z.gauge", 9)
        lines = metrics.format_table().splitlines()
        names = [line.split()[0] for line in lines]
        # Counters first (sorted), then histograms, then gauges.
        assert names == ["a.counter", "b.counter", "h.hist", "z.gauge"]
        assert metrics.format_table() == metrics.format_table()

    def test_observability_snapshot_folds_timer(self):
        metrics = MetricsRegistry()
        metrics.inc("c")
        timer = StageTimer()
        timer.add("formation", 0.5, 2)
        snap = observability_snapshot(metrics, timer)
        assert snap["counters"] == {"c": 1}
        assert snap["stages"]["formation"]["seconds"] == pytest.approx(0.5)
        assert snap["total_seconds"] == pytest.approx(0.5)


class TestGaugeModes:
    def test_default_max_is_a_high_water_mark(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("memo.entries", 14, mode="max")
        b.gauge("memo.entries", 9)
        a.merge(b)
        assert a.gauges["memo.entries"] == 14

    def test_last_mode_adopts_the_incoming_value(self):
        # A shard's *current* queue depth: after the queue drains, the
        # newest snapshot must win or the stale peak pins forever.
        fleet, shard = MetricsRegistry(), MetricsRegistry()
        fleet.gauge("fleet.queued", 120, mode="last")
        shard.gauge("fleet.queued", 0, mode="last")
        fleet.merge(shard)
        assert fleet.gauges["fleet.queued"] == 0

    def test_receiver_learns_mode_from_the_incoming_side(self):
        receiver, sender = MetricsRegistry(), MetricsRegistry()
        sender.gauge("fleet.inflight", 3, mode="last")
        receiver.merge(sender)
        sender2 = MetricsRegistry()
        sender2.gauge("fleet.inflight", 1, mode="last")
        receiver.merge(sender2)
        assert receiver.gauges["fleet.inflight"] == 1

    def test_mode_is_sticky_until_changed(self):
        metrics = MetricsRegistry()
        metrics.gauge("g", 5, mode="last")
        metrics.gauge("g", 7)  # no mode -> keeps "last"
        assert metrics.gauge_modes == {"g": "last"}
        metrics.gauge("g", 9, mode="max")  # explicit reset
        assert metrics.gauge_modes == {}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().gauge("g", 1, mode="sum")

    def test_modes_round_trip_through_snapshots(self):
        worker = MetricsRegistry()
        worker.gauge("fleet.queued", 4, mode="last")
        worker.gauge("memo.entries", 10, mode="max")
        snap = json.loads(json.dumps(worker.snapshot()))
        assert snap["gauge_modes"] == {"fleet.queued": "last"}
        clone = MetricsRegistry.from_snapshot(snap)
        assert clone.gauge_modes == {"fleet.queued": "last"}
        clone.merge_snapshot(
            {"gauges": {"fleet.queued": 1, "memo.entries": 6}})
        assert clone.gauges == {"fleet.queued": 1, "memo.entries": 10}

    def test_mode_free_snapshot_keeps_the_old_shape(self):
        # Back-compat: registries that never used "last" serialize
        # exactly as before the modes existed.
        metrics = MetricsRegistry()
        metrics.gauge("g", 1)
        metrics.gauge("h", 2, mode="max")
        assert "gauge_modes" not in metrics.snapshot()
        assert set(metrics.snapshot()) == {"counters", "gauges",
                                           "histograms"}

    def test_format_table_names_the_mode(self):
        metrics = MetricsRegistry()
        metrics.gauge("depth", 3, mode="last")
        metrics.gauge("peak", 9)
        table = metrics.format_table()
        assert "(gauge:last)" in table
        assert "(gauge:max)" in table

    def test_null_metrics_accepts_mode(self):
        NullMetrics().gauge("g", 1, mode="last")


class TestRollingHistogram:
    def _rolling(self, clock):
        from repro.obs import RollingHistogram

        return RollingHistogram(window_seconds=10.0, windows=3,
                                clock=clock)

    def test_summary_over_live_windows(self):
        now = {"t": 0.0}
        rolling = self._rolling(lambda: now["t"])
        for value in (100, 200, 400):
            rolling.observe(value)
        summary = rolling.summary()
        assert summary["count"] == 3
        assert summary["min"] == 100 and summary["max"] == 400
        assert summary["window_seconds"] == 30.0
        assert summary["p50"] >= 200
        assert summary["p99"] <= 400

    def test_old_windows_age_out(self):
        now = {"t": 0.0}
        rolling = self._rolling(lambda: now["t"])
        rolling.observe(1_000_000)  # a slow outlier at t=0
        now["t"] = 15.0
        rolling.observe(100)
        assert rolling.merged().count == 2  # still inside the horizon
        now["t"] = 35.0  # window 0 is now beyond 3x10s
        rolling.observe(100)
        merged = rolling.merged()
        assert merged.count == 2
        assert merged.max == 100  # the outlier no longer dominates p99

    def test_empty_summary(self):
        now = {"t": 0.0}
        summary = self._rolling(lambda: now["t"]).summary()
        assert summary["count"] == 0
        assert summary["p99"] is None

    def test_rejects_degenerate_config(self):
        from repro.obs import RollingHistogram

        with pytest.raises(ValueError):
            RollingHistogram(window_seconds=0)
        with pytest.raises(ValueError):
            RollingHistogram(windows=0)


class TestMetricsScope:
    def test_default_is_null(self):
        assert current_metrics() is NULL_METRICS

    def test_scope_installs_and_restores(self):
        metrics = MetricsRegistry()
        with metrics_scope(metrics):
            assert current_metrics() is metrics
            current_metrics().inc("seen")
        assert current_metrics() is NULL_METRICS
        assert metrics.counters == {"seen": 1}

    def test_inner_scope_wins(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with metrics_scope(outer):
            with metrics_scope(inner):
                assert current_metrics() is inner
            assert current_metrics() is outer

    def test_null_scope_does_not_shadow(self):
        # An uninstrumented intermediate layer passing NULL_METRICS must
        # not hide the instrumented caller's registry.
        outer = MetricsRegistry()
        with metrics_scope(outer):
            with metrics_scope(NULL_METRICS):
                assert current_metrics() is outer

    def test_scope_restored_after_exception(self):
        metrics = MetricsRegistry()
        with pytest.raises(ValueError):
            with metrics_scope(metrics):
                raise ValueError
        assert current_metrics() is NULL_METRICS

    def test_null_metrics_api_is_silent(self):
        null = NullMetrics()
        null.inc("x")
        null.gauge("y", 1)
        null.observe("z", 2)
        null.merge(MetricsRegistry())
        null.merge_snapshot({})


# ----------------------------------------------------------------------
# Determinism contract + pipeline instrumentation


GRID = [GridCell("compress", scheme, "4U", "global_weight")
        for scheme in ("bb", "treegion", "treegion-td:2.0")]


class TestMergeDeterminism:
    def test_serial_and_parallel_metrics_byte_identical(self):
        serial_metrics = MetricsRegistry()
        parallel_metrics = MetricsRegistry()
        serial = api.evaluate_grid(GRID, jobs=1, metrics=serial_metrics)
        parallel = api.evaluate_grid(GRID, jobs=2,
                                     metrics=parallel_metrics)

        for a, b in zip(serial, parallel):
            assert a.time == b.time

        dump_serial = json.dumps(serial_metrics.deterministic_snapshot(),
                                 sort_keys=True)
        dump_parallel = json.dumps(
            parallel_metrics.deterministic_snapshot(), sort_keys=True)
        assert dump_serial == dump_parallel

        counters = serial_metrics.counters
        assert counters["engine.cells"] == len(GRID)
        assert counters["formation.regions"] > 0
        assert counters["schedule.regions"] > 0
        assert counters["ddg.nodes"] > 0


class TestPipelineCounters:
    def test_evaluate_program_populates_counters(self):
        program = build_benchmark("compress")
        metrics = MetricsRegistry()
        tracer = Tracer()
        options = ScheduleOptions(heuristic="global_weight",
                                  dominator_parallelism=True)
        evaluate_program(program, treegion_scheme(), VLIW_4U, options,
                         metrics=metrics, tracer=tracer)

        counters = metrics.counters
        assert counters["formation.regions"] >= 1
        assert counters["formation.blocks"] >= counters["formation.regions"]
        assert counters["schedule.regions"] == counters["formation.regions"]
        assert counters["schedule.cycles"] > 0
        assert counters["ddg.nodes"] > 0
        assert counters["ddg.edges"] > 0
        # One histogram sample per scheduled region.
        lengths = metrics.histograms["schedule.length"]
        assert lengths.count == counters["schedule.regions"]
        assert lengths.total == counters["schedule.cycles"]

        names = [s.name for s in tracer.finished_spans()]
        assert "evaluate_program" in names
        assert "schedule_region" in names
        assert "list_schedule" in names

    def test_tail_duplication_counters(self):
        program = build_benchmark("compress")
        metrics = MetricsRegistry()
        with metrics_scope(metrics):
            evaluate_program(program, treegion_td_scheme(), VLIW_4U,
                             ScheduleOptions(heuristic="global_weight"))
        assert metrics.counters.get("tail_dup.blocks", 0) > 0
        assert metrics.counters.get("tail_dup.ops", 0) > 0

    def test_simulator_records_gauges(self):
        program = program_with(diamond_function())
        profile_program(program, inputs=[[5]])
        metrics = MetricsRegistry()
        _result, simulator = api.simulate(program, "treegion", "4U",
                                          args=[5])
        simulator.record_metrics(metrics)
        assert metrics.gauges["sim.cycles"] > 0
        assert metrics.gauges["sim.region_visits"] > 0
        assert "sim.squashes" in metrics.gauges
        # Gauges stay out of the deterministic snapshot.
        assert "gauges" not in metrics.deterministic_snapshot()


# ----------------------------------------------------------------------
# DOT schedule annotation


class TestDotScheduleAnnotation:
    def _scheduled(self):
        fn = build_figure1_like()
        partition = form_treegions(fn.cfg)
        schedules = schedule_partition(
            partition, VLIW_4U, ScheduleOptions(heuristic="global_weight")
        )
        return fn, partition, schedules

    def test_blocks_annotated_with_cycles(self):
        fn, partition, schedules = self._scheduled()
        dot = cfg_to_dot(fn.cfg, partition=partition, schedules=schedules)
        assert "sched:" in dot
        assert "cycles)" in dot  # cluster labels carry schedule length

    def test_no_annotation_without_schedules(self):
        fn, partition, _schedules = self._scheduled()
        dot = cfg_to_dot(fn.cfg, partition=partition)
        assert "sched:" not in dot


# ----------------------------------------------------------------------
# CLI surfacing


SOURCE = """
func main(a) {
    var x = 0;
    if (a > 3) { x = a * 2; } else { x = a + 10; }
    return x;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return str(path)


class TestObservabilityCLI:
    def test_trace_command_writes_chrome_json(self, source_file, tmp_path,
                                              capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "spans.jsonl"
        metrics_out = tmp_path / "metrics.json"
        assert main(["trace", source_file, "--args", "5",
                     "--out", str(out), "--jsonl", str(jsonl),
                     "--metrics-out", str(metrics_out)]) == 0

        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "evaluate_program" in names
        assert "list_schedule" in names

        rows = [json.loads(line)
                for line in jsonl.read_text().splitlines()]
        assert any(row["name"] == "schedule_region" for row in rows)

        metrics_doc = json.loads(metrics_out.read_text())
        assert metrics_doc["counters"]["schedule.regions"] > 0
        assert "stages" in metrics_doc

        stdout = capsys.readouterr().out
        assert "estimated time" in stdout
        assert "schedule.regions" in stdout

    def test_run_metrics_and_trace_flags(self, source_file, tmp_path):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        assert main(["run", source_file, "--args", "5",
                     "--metrics", str(metrics_path),
                     "--trace", str(trace_path)]) == 0
        metrics_doc = json.loads(metrics_path.read_text())
        assert metrics_doc["counters"]["schedule.regions"] > 0
        assert metrics_doc["gauges"]["sim.cycles"] > 0
        trace_doc = json.loads(trace_path.read_text())
        assert any(e["name"] == "simulate"
                   for e in trace_doc["traceEvents"])

    def test_bench_timings_json(self, tmp_path, capsys):
        timings = tmp_path / "timings.json"
        assert main(["bench", "--benchmarks", "compress",
                     "--schemes", "bb,treegion", "--machine", "4U",
                     "--metrics", str(tmp_path / "m.json"),
                     "--timings-json", str(timings)]) == 0
        doc = json.loads(timings.read_text())
        assert doc["total_seconds"] > 0
        assert "formation" in doc["stages"]
        assert doc["counters"]["engine.cells"] > 0
        capsys.readouterr()

    def test_dot_schedule_flag(self, source_file, capsys):
        assert main(["dot", source_file, "--schedule"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "sched:" in out
