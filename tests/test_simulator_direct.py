"""Direct unit tests for the VLIW simulator's execution model.

``tests/test_vliw_simulator.py`` drives the whole pipeline (compile →
schedule → simulate); these tests instead build :class:`RegionSchedule`
objects *by hand*, so each one controls exactly which op issues in which
cycle under which guard — the only way to pin down the simulator's own
semantics independently of what the list scheduler happens to emit:

* guarded ops squash (and squashed predicate-writers still clear their
  destinations);
* speculative divide-by-zero is dismissible (writes 0, no trap);
* exactly one exit may fire per region visit (disjoint-exit assertion);
* in-flight multi-cycle writes drain at the region boundary.
"""

import pytest

from repro.ir import (
    CompareCond,
    IRBuilder,
    Immediate,
    Opcode,
    Operation,
    Program,
    RegClass,
    Register,
)
from repro.machine import VLIW_4U
from repro.regions import form_basic_block_regions
from repro.schedule.schedule import RegionSchedule, SchedOp
from repro.util.errors import SchedulingError
from repro.vliw.simulator import (
    ScheduledFunction,
    ScheduledProgram,
    VLIWSimulator,
)


def _single_block_main(params=1):
    """A one-block ``main`` returning its first parameter."""
    program = Program(entry="main")
    regs = [Register(RegClass.GPR, index) for index in range(params)]
    fn = program.new_function("main", list(regs))
    for reg in regs:
        fn.regs.reserve(reg)
    builder = IRBuilder(fn)
    entry = builder.block("entry")
    builder.at(entry)
    builder.ret(regs[0])
    return program, fn, regs


def _manual(program, fn, schedules):
    """Wrap hand-built region schedules into a simulatable program.

    The simulator only consults the per-root schedule table, so the
    partition slot can stay empty here.
    """
    scheduled = ScheduledProgram(program, VLIW_4U, "manual")
    scheduled.add(ScheduledFunction(fn, None, list(schedules)))
    return VLIWSimulator(scheduled)


class TestGuardSquash:
    def _run(self, cond):
        program, fn, (a,) = _single_block_main()
        region = list(form_basic_block_regions(fn.cfg))[0]
        exit_ = region.exits()[0]
        assert exit_.is_return

        pred = Register(RegClass.PRED, 0)
        schedule = RegionSchedule(region)
        schedule.place(SchedOp(0, Operation(
            1, Opcode.CMPP, dests=[pred],
            srcs=[Immediate(0), Immediate(1)], cond=cond,
        ), region.root), 1)
        schedule.place(SchedOp(1, Operation(
            2, Opcode.ADD, dests=[a], srcs=[a, Immediate(100)], guard=pred,
        ), region.root), 2)
        schedule.place(SchedOp(2, Operation(
            3, Opcode.RET, srcs=[a],
        ), region.root, exit=exit_), 3)
        return _manual(program, fn, [schedule]).run([7])

    def test_false_guard_squashes_op(self):
        assert self._run(CompareCond.GT) == 7  # 0 > 1: squashed

    def test_true_guard_executes_op(self):
        assert self._run(CompareCond.LT) == 107  # 0 < 1: executes

    def test_squashed_cmpp_still_clears_dests(self):
        """A squashed predicate-writer clears its dests so guard chains
        stay well-defined along not-taken paths."""
        program, fn, (a,) = _single_block_main()
        region = list(form_basic_block_regions(fn.cfg))[0]
        exit_ = region.exits()[0]

        off = Register(RegClass.PRED, 0)
        q_true = Register(RegClass.PRED, 1)
        q_false = Register(RegClass.PRED, 2)
        schedule = RegionSchedule(region)
        schedule.place(SchedOp(0, Operation(
            1, Opcode.CMPP, dests=[off],
            srcs=[Immediate(0), Immediate(1)], cond=CompareCond.GT,
        ), region.root), 1)  # off = False
        # Squashed two-dest CMPP: without clearing, q_false would stay
        # undefined and the guarded add below would misfire.
        schedule.place(SchedOp(1, Operation(
            2, Opcode.CMPP, dests=[q_true, q_false],
            srcs=[Immediate(0), Immediate(1)], cond=CompareCond.LT,
            guard=off,
        ), region.root), 2)
        schedule.place(SchedOp(2, Operation(
            3, Opcode.ADD, dests=[a], srcs=[a, Immediate(100)],
            guard=q_false,
        ), region.root), 3)
        schedule.place(SchedOp(3, Operation(
            4, Opcode.RET, srcs=[a],
        ), region.root, exit=exit_), 4)
        assert _manual(program, fn, [schedule]).run([7]) == 7


class TestDismissibleSpeculation:
    def test_divide_by_zero_writes_zero(self):
        program, fn, (a,) = _single_block_main()
        region = list(form_basic_block_regions(fn.cfg))[0]
        exit_ = region.exits()[0]

        quotient = Register(RegClass.GPR, 50)
        schedule = RegionSchedule(region)
        schedule.place(SchedOp(0, Operation(
            1, Opcode.DIV, dests=[quotient],
            srcs=[Immediate(5), Immediate(0)],
        ), region.root), 1)
        schedule.place(SchedOp(1, Operation(
            2, Opcode.RET, srcs=[quotient],
        ), region.root, exit=exit_), 2)
        assert _manual(program, fn, [schedule]).run([3]) == 0

    def test_mod_by_zero_writes_zero(self):
        program, fn, (a,) = _single_block_main()
        region = list(form_basic_block_regions(fn.cfg))[0]
        exit_ = region.exits()[0]

        remainder = Register(RegClass.GPR, 50)
        schedule = RegionSchedule(region)
        schedule.place(SchedOp(0, Operation(
            1, Opcode.MOD, dests=[remainder],
            srcs=[a, Immediate(0)],
        ), region.root), 1)
        schedule.place(SchedOp(1, Operation(
            2, Opcode.RET, srcs=[remainder],
        ), region.root, exit=exit_), 2)
        assert _manual(program, fn, [schedule]).run([9]) == 0


def _branching_main():
    """main(a): entry branches on a > 0 to two RET blocks."""
    program = Program(entry="main")
    a = Register(RegClass.GPR, 0)
    fn = program.new_function("main", [a])
    fn.regs.reserve(a)
    builder = IRBuilder(fn)
    entry = builder.block("entry")
    pos = builder.block("pos")
    neg = builder.block("neg")
    builder.at(entry)
    pred = builder.cmpp(CompareCond.GT, a, 0)
    builder.br_true(pred, pos, neg)
    builder.at(pos)
    builder.ret(1)
    builder.at(neg)
    builder.ret(2)
    return program, fn, a, entry, pos, neg


class TestDisjointExits:
    def _schedules(self, fn, entry, pos, neg, second_guard):
        partition = list(form_basic_block_regions(fn.cfg))
        by_root = {region.root.bid: region for region in partition}
        root_region = by_root[entry.bid]
        exits = {exit_.edge.dst.bid: exit_ for exit_ in root_region.exits()}

        p_taken = Register(RegClass.PRED, 10)
        p_fall = Register(RegClass.PRED, 11)
        a = fn.params[0]
        schedule = RegionSchedule(root_region)
        schedule.place(SchedOp(0, Operation(
            1, Opcode.CMPP, dests=[p_taken, p_fall],
            srcs=[a, Immediate(0)], cond=CompareCond.GT,
        ), root_region.root), 1)
        schedule.place(SchedOp(1, Operation(
            2, Opcode.BRCT, srcs=[p_taken], target=pos.bid,
        ), root_region.root, exit=exits[pos.bid]), 2)
        schedule.place(SchedOp(2, Operation(
            3, Opcode.BRCT, srcs=[second_guard(p_taken, p_fall)],
            target=neg.bid,
        ), root_region.root, exit=exits[neg.bid]), 2)

        rets = []
        for block, value in ((pos, 1), (neg, 2)):
            region = by_root[block.bid]
            ret_schedule = RegionSchedule(region)
            ret_schedule.place(SchedOp(0, Operation(
                4, Opcode.RET, srcs=[Immediate(value)],
            ), region.root, exit=region.exits()[0]), 1)
            rets.append(ret_schedule)
        return [schedule] + rets

    def test_disjoint_exits_route_correctly(self):
        for args, expected in (([5], 1), ([-5], 2)):
            program, fn, _a, entry, pos, neg = _branching_main()
            schedules = self._schedules(
                fn, entry, pos, neg, lambda taken, fall: fall,
            )
            assert _manual(program, fn, schedules).run(args) == expected

    def test_two_firing_exits_rejected(self):
        # Both exit branches guarded on the SAME predicate: when a > 0
        # both would fire in one visit — the simulator must refuse.
        program, fn, _a, entry, pos, neg = _branching_main()
        schedules = self._schedules(
            fn, entry, pos, neg, lambda taken, fall: taken,
        )
        with pytest.raises(SchedulingError, match="two exits fired"):
            _manual(program, fn, schedules).run([5])

    def test_no_exit_fired_rejected(self):
        # Neither branch true (a == 0 under GT/LT guards): the region
        # runs out of cycles with no exit — also a scheduling bug.
        program, fn, _a, entry, pos, neg = _branching_main()
        schedules = self._schedules(
            fn, entry, pos, neg, lambda taken, fall: taken,
        )
        with pytest.raises(SchedulingError, match="no exit fired"):
            _manual(program, fn, schedules).run([0])


class TestInFlightDrain:
    def test_pending_write_drains_at_region_exit(self):
        """A 2-cycle load issued in the exit cycle commits across the
        region boundary — the next region must observe its value."""
        program = Program(entry="main")
        var = program.add_global("g", size=1, initial=[7])
        a = Register(RegClass.GPR, 0)
        fn = program.new_function("main", [a])
        fn.regs.reserve(a)
        builder = IRBuilder(fn)
        first = builder.block("first")
        second = builder.block("second")
        builder.at(first)
        builder.jump(second)
        builder.at(second)
        builder.ret(a)

        partition = list(form_basic_block_regions(fn.cfg))
        by_root = {region.root.bid: region for region in partition}
        loaded = Register(RegClass.GPR, 40)

        first_region = by_root[first.bid]
        first_schedule = RegionSchedule(first_region)
        # LD (latency 2) and the exit branch share cycle 1: the write is
        # still in flight when the exit fires and must drain.
        first_schedule.place(SchedOp(0, Operation(
            1, Opcode.LD, dests=[loaded],
            srcs=[Immediate(var.address), Immediate(0)],
        ), first_region.root), 1)
        first_schedule.place(SchedOp(1, Operation(
            2, Opcode.BRU, target=second.bid,
        ), first_region.root, exit=first_region.exits()[0]), 1)

        second_region = by_root[second.bid]
        second_schedule = RegionSchedule(second_region)
        second_schedule.place(SchedOp(0, Operation(
            3, Opcode.RET, srcs=[loaded],
        ), second_region.root, exit=second_region.exits()[0]), 1)

        simulator = _manual(program, fn, [first_schedule, second_schedule])
        assert simulator.run([99]) == 7
        # Exit accounting: each region retired at cycle 1.
        assert simulator.cycles == 2
