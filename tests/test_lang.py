"""Tests for the minic frontend: lexing, parsing, lowering, execution."""

import pytest

from repro.ir import verify_program
from repro.interp import run_program
from repro.lang import compile_source, parse, tokenize
from repro.util.errors import FrontendError


def run(source, args=()):
    program = compile_source(source)
    result, memory = run_program(program, list(args))
    return result


class TestLexer:
    def test_numbers_idents_ops(self):
        tokens = tokenize("x1 = 3 + 4.5; // comment\n y")
        kinds = [t.kind for t in tokens]
        assert kinds == ["ident", "op", "int", "op", "float", "op", "ident", "eof"]

    def test_keywords_recognized(self):
        tokens = tokenize("if while func var")
        assert [t.kind for t in tokens[:-1]] == ["if", "while", "func", "var"]

    def test_maximal_munch(self):
        tokens = tokenize("a <<= b")  # lexes as '<<' then '='
        texts = [t.text for t in tokens if t.kind == "op"]
        assert texts == ["<<", "="]

    def test_block_comment_tracks_lines(self):
        tokens = tokenize("/* a\nb */ x")
        assert tokens[0].line == 2

    def test_bad_character(self):
        with pytest.raises(FrontendError):
            tokenize("a $ b")

    def test_unterminated_comment(self):
        with pytest.raises(FrontendError):
            tokenize("/* never ends")


class TestParserErrors:
    @pytest.mark.parametrize("source", [
        "func f( { }",
        "func f() { var; }",
        "func f() { if 1 { } }",
        "func f() { switch (x) { } }",
        "func f() { case 1: {} }",
        "notakeyword x;",
        "func f() { return 1 }",
    ])
    def test_rejects(self, source):
        with pytest.raises(FrontendError):
            parse(source)

    def test_duplicate_case_rejected(self):
        with pytest.raises(FrontendError):
            parse("func f(x){ switch(x){ case 1: {} case 1: {} } }")


class TestSemantics:
    def test_arithmetic_precedence(self):
        assert run("func main(){ return 2 + 3 * 4; }") == 14
        assert run("func main(){ return (2 + 3) * 4; }") == 20
        assert run("func main(){ return 10 - 4 - 3; }") == 3  # left assoc

    def test_unary(self):
        assert run("func main(){ return -5 + 8; }") == 3
        assert run("func main(){ return ~0; }") == -1
        assert run("func main(){ return !0 + !7; }") == 1

    def test_comparison_as_value(self):
        assert run("func main(a){ return a < 10; }", [3]) == 1
        assert run("func main(a){ return a < 10; }", [30]) == 0

    def test_short_circuit_and(self):
        # Division by zero on the right must not execute when left false.
        src = "func main(a){ if (a != 0 && 10 / a > 2) { return 1; } return 0; }"
        assert run(src, [0]) == 0
        assert run(src, [3]) == 1
        assert run(src, [10]) == 0

    def test_short_circuit_or(self):
        src = "func main(a){ if (a == 0 || 10 / a > 2) { return 1; } return 0; }"
        assert run(src, [0]) == 1
        assert run(src, [3]) == 1
        assert run(src, [10]) == 0

    def test_if_else_chain(self):
        src = """
        func main(a) {
            if (a < 0) { return -1; }
            else if (a == 0) { return 0; }
            else { return 1; }
        }
        """
        assert run(src, [-5]) == -1
        assert run(src, [0]) == 0
        assert run(src, [9]) == 1

    def test_while_with_break_continue(self):
        src = """
        func main(n) {
            var total = 0;
            var i = 0;
            while (1) {
                i = i + 1;
                if (i > n) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            return total;
        }
        """
        assert run(src, [10]) == 1 + 3 + 5 + 7 + 9

    def test_for_loop(self):
        src = """
        func main(n) {
            var total = 0;
            for (var i = 0; i < n; i = i + 1) { total = total + i; }
            return total;
        }
        """
        assert run(src, [10]) == 45

    def test_switch(self):
        src = """
        func main(a) {
            switch (a) {
                case 1: { return 100; }
                case 2: { return 200; }
                default: { return -1; }
            }
        }
        """
        assert run(src, [1]) == 100
        assert run(src, [2]) == 200
        assert run(src, [7]) == -1

    def test_globals_and_arrays(self):
        src = """
        var counter = 10;
        array table[4] = {2, 4, 6, 8};
        func main(i) {
            counter = counter + table[i];
            return counter;
        }
        """
        assert run(src, [2]) == 16

    def test_functions_and_recursion(self):
        src = """
        func fact(n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        func main(n) { return fact(n); }
        """
        assert run(src, [6]) == 720

    def test_mutual_recursion(self):
        src = """
        func is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        func is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
        func main(n) { return is_even(n); }
        """
        assert run(src, [10]) == 1
        assert run(src, [7]) == 0

    def test_implicit_return_zero(self):
        assert run("func main(){ var x = 5; }") == 0

    def test_nested_loops(self):
        src = """
        func main(n) {
            var total = 0;
            for (var i = 0; i < n; i = i + 1) {
                for (var j = 0; j < i; j = j + 1) {
                    total = total + 1;
                }
            }
            return total;
        }
        """
        assert run(src, [5]) == 10

    def test_produced_ir_is_valid(self):
        src = """
        array buf[16];
        func helper(x) { return x * x; }
        func main(n) {
            var best = 0;
            for (var i = 0; i < n; i = i + 1) {
                buf[i] = helper(i) % 7;
                if (buf[i] > best && i != 3) { best = buf[i]; }
            }
            switch (best) {
                case 0: { return -1; }
                default: { return best; }
            }
        }
        """
        program = compile_source(src)
        verify_program(program)
        result, _ = run_program(program, [10])
        expected_buf = [(i * i) % 7 for i in range(10)]
        expected = max(v for i, v in enumerate(expected_buf) if i != 3 or True)
        # Python reference mirroring the minic logic exactly:
        best = 0
        for i in range(10):
            if expected_buf[i] > best and i != 3:
                best = expected_buf[i]
        assert result == (best if best != 0 else -1)

    def test_frontend_errors(self):
        with pytest.raises(FrontendError):
            compile_source("func main(){ return y; }")
        with pytest.raises(FrontendError):
            compile_source("func main(){ zap(1); }")
        with pytest.raises(FrontendError):
            compile_source("func main(){ var a = 1; var a = 2; }")
        with pytest.raises(FrontendError):
            compile_source("func main(){ break; }")
        with pytest.raises(FrontendError):
            compile_source("func nope(){ return 0; }")  # no main
