"""Tests for the markdown report generator."""

from repro.evaluation.report import ReportBuilder, generate_report


class TestReportBuilder:
    def test_sections_compose(self):
        builder = ReportBuilder(benchmarks=["compress"])
        builder.add_region_statistics()
        builder.add_heuristic_speedups("4U")
        text = builder.render()
        assert "# Treegion scheduling — experiment report" in text
        assert "## Region statistics" in text
        assert "## Treegion heuristics, 4U" in text
        assert "compress" in text

    def test_tables_are_well_formed_markdown(self):
        builder = ReportBuilder(benchmarks=["compress"])
        builder.add_region_statistics()
        text = builder.render()
        table_lines = [l for l in text.splitlines() if l.startswith("|")]
        widths = {line.count("|") for line in table_lines}
        assert len(widths) == 1  # consistent column count

    def test_full_report_single_benchmark(self):
        text = generate_report(["compress"])
        for section in ("Region statistics", "Treegion heuristics",
                        "All schemes", "Profile-variation",
                        "out-of-order core"):
            assert section in text
        # Speedup cells are numeric.
        assert any(cell.strip().replace(".", "").isdigit()
                   for line in text.splitlines() if line.startswith("| comp")
                   for cell in line.split("|")[2:-1])
