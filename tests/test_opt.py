"""Tests for the classic optimizer (fold, propagate, CSE, DCE, CFG opts)."""

import pytest

from repro.interp import Interpreter, run_program
from repro.lang import compile_source
from repro.ir import Opcode, verify_program
from repro.opt import optimize_program
from repro.opt.cfgopt import remove_unreachable, simplify_branches, straighten
from repro.opt.dce import eliminate_dead_code
from repro.opt.fold import fold_constants
from repro.opt.local import propagate_block_local
from repro.workloads.minic_programs import (
    build_minic_program,
    minic_program_names,
)


def _opcodes(program):
    return [
        op.opcode
        for fn in program.functions()
        for block in fn.cfg.blocks()
        for op in block.ops
    ]


class TestFolding:
    def test_constant_arithmetic_folds(self):
        program = compile_source(
            "func main() { return 2 * 3 + 4 - 1; }"
        )
        stats = optimize_program(program)
        assert stats.folded >= 1
        assert run_program(program)[0] == 9
        # No arithmetic survives: the return value is a constant.
        assert Opcode.MUL not in _opcodes(program)
        assert Opcode.ADD not in _opcodes(program)

    def test_algebraic_identities(self):
        program = compile_source(
            "func main(a) { return (a + 0) * 1 + (a - a) * 99; }"
        )
        optimize_program(program)
        assert run_program(program, [7])[0] == 7
        assert Opcode.MUL not in _opcodes(program)

    def test_division_by_zero_not_folded(self):
        program = compile_source("func main() { return 1 / 0; }")
        optimize_program(program)
        assert Opcode.DIV in _opcodes(program)  # the trap is preserved
        with pytest.raises(Exception):
            run_program(program)

    def test_mul_by_zero(self):
        program = compile_source("func main(a) { return a * 0 + 5; }")
        optimize_program(program)
        assert run_program(program, [123])[0] == 5
        assert Opcode.MUL not in _opcodes(program)


class TestLocalPropagation:
    def test_copy_chain_collapses(self):
        program = compile_source("""
            func main(a) {
                var x = a;
                var y = x;
                var z = y;
                return z + z;
            }
        """)
        stats = optimize_program(program)
        assert stats.propagated >= 1
        assert run_program(program, [4])[0] == 8
        # All the intermediate movs die.
        movs = [o for o in _opcodes(program) if o is Opcode.MOV]
        assert len(movs) == 0

    def test_local_cse(self):
        program = compile_source(
            "func main(a, b) { return (a + b) * (a + b); }"
        )
        fn = program.entry_function
        adds_before = sum(1 for o in _opcodes(program) if o is Opcode.ADD)
        assert adds_before == 2
        optimize_program(program)
        adds_after = sum(1 for o in _opcodes(program) if o is Opcode.ADD)
        assert adds_after == 1
        assert run_program(program, [3, 4])[0] == 49

    def test_load_cse_killed_by_store(self):
        program = compile_source("""
            array a[2];
            func main(i) {
                var x = a[0];
                a[0] = x + 1;
                var y = a[0];
                return y;
            }
        """)
        optimize_program(program)
        # The second load must survive: the store killed availability.
        loads = [o for o in _opcodes(program) if o is Opcode.LD]
        assert len(loads) >= 2
        assert run_program(program, [0])[0] == 1

    def test_redundant_load_removed_without_store(self):
        program = compile_source("""
            array a[2];
            func main(i) { return a[0] + a[0]; }
        """)
        optimize_program(program)
        loads = [o for o in _opcodes(program) if o is Opcode.LD]
        assert len(loads) == 1


class TestDCE:
    def test_dead_computation_removed(self):
        program = compile_source("""
            func main(a) {
                var dead = a * 1234 + 5;
                var dead2 = dead * dead;
                return a;
            }
        """)
        stats = optimize_program(program)
        assert stats.ops_removed >= 2
        assert Opcode.MUL not in _opcodes(program)

    def test_stores_never_removed(self):
        program = compile_source("""
            var g = 0;
            func main(a) { g = a; return 0; }
        """)
        optimize_program(program)
        assert Opcode.ST in _opcodes(program)

    def test_live_through_loop_kept(self):
        program = compile_source("""
            func main(n) {
                var acc = 1;
                for (var i = 0; i < n; i = i + 1) { acc = acc * 2; }
                return acc;
            }
        """)
        optimize_program(program)
        assert run_program(program, [5])[0] == 32


class TestCFGOpts:
    def test_while_true_branch_eliminated(self):
        program = compile_source("""
            func main(n) {
                var i = 0;
                while (1) {
                    i = i + 1;
                    if (i >= n) { return i; }
                }
            }
        """)
        stats = optimize_program(program)
        assert stats.branches_simplified >= 1
        # The loop header's constant compare is gone.
        assert run_program(program, [7])[0] == 7

    def test_constant_if_removes_dead_arm(self):
        program = compile_source("""
            func main(a) {
                var r = 0;
                if (2 > 1) { r = 10; } else { r = 20; }
                return r + a;
            }
        """)
        stats = optimize_program(program)
        assert stats.blocks_removed >= 1
        assert run_program(program, [1])[0] == 11

    def test_constant_switch_collapses(self):
        program = compile_source("""
            func main(a) {
                switch (2) {
                    case 1: { return 100; }
                    case 2: { return 200; }
                    default: { return -1; }
                }
            }
        """)
        stats = optimize_program(program)
        assert stats.branches_simplified >= 1
        assert run_program(program, [0])[0] == 200
        assert Opcode.SWITCH not in _opcodes(program)

    def test_straightening_merges_chains(self):
        program = compile_source("func main(a) { var x = a + 1; return x; }")
        blocks_before = len(program.entry_function.cfg)
        stats = optimize_program(program)
        assert len(program.entry_function.cfg) <= blocks_before

    def test_unreachable_code_dropped(self):
        program = compile_source("""
            func main(a) {
                return a;
            }
            func helper(x) { return x; }
        """)
        fn = program.entry_function
        # Hand-append an unreachable block.
        from repro.ir import IRBuilder

        builder = IRBuilder(fn)
        orphan = builder.block("orphan")
        builder.at(orphan).ret(0)
        assert remove_unreachable(fn.cfg) == 1


class TestEndToEnd:
    @pytest.mark.parametrize("name", minic_program_names())
    def test_semantics_preserved_on_library(self, name):
        program, args = build_minic_program(name)
        expected = Interpreter(program).run(args)
        optimize_program(program)
        verify_program(program)
        assert Interpreter(program).run(args) == expected

    @pytest.mark.parametrize("name", minic_program_names())
    def test_optimized_code_schedules_and_cosimulates(self, name):
        from repro.interp import profile_program
        from repro.machine import VLIW_4U
        from repro.schedule import ScheduleOptions
        from repro.evaluation import treegion_scheme
        from repro.vliw import simulate

        program, args = build_minic_program(name)
        expected = Interpreter(program).run(args)
        optimize_program(program)
        profile_program(program, inputs=[args])
        result, _sim = simulate(
            program, treegion_scheme(), VLIW_4U, args,
            ScheduleOptions(heuristic="global_weight",
                            dominator_parallelism=True),
        )
        assert result == expected

    def test_optimizer_is_idempotent(self):
        program, args = build_minic_program("hash")
        optimize_program(program)
        ops_once = sum(f.cfg.total_ops for f in program.functions())
        second = optimize_program(program)
        ops_twice = sum(f.cfg.total_ops for f in program.functions())
        assert ops_once == ops_twice
        assert second.ops_removed == 0 and second.blocks_merged == 0

    def test_never_grows_code(self):
        for name in minic_program_names():
            program, _args = build_minic_program(name)
            stats = optimize_program(program)
            assert stats.ops_after <= stats.ops_before, name
