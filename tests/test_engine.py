"""The parallel evaluation engine: equivalence with the serial runner.

The engine's contract is bit-identical results — not "close", identical:
``time`` (float equality, same accumulation order), ``code_expansion``,
and every region's schedule length must match per-cell serial evaluation
for every cell, on both the shared-work serial path and the
multiprocessing path.
"""

import pytest

from repro.evaluation import evaluate_program
from repro.evaluation.engine import (
    GridCell,
    build_scheme,
    default_grid,
    evaluate_cell,
    evaluate_grid,
    machine_by_name,
)
from repro.schedule.priorities import HEURISTICS
from repro.schedule.scheduler import ScheduleOptions
from repro.util.timing import StageTimer
from repro.workloads.specint import build_benchmark

# A small but representative slice of the paper's grid: one mutating and
# one non-mutating scheme, both machines, two heuristics.
GRID = [
    GridCell(bench, scheme, machine, heuristic)
    for bench in ("compress", "li")
    for scheme in ("bb", "treegion", "treegion-td:2.0")
    for machine in ("4U", "8U")
    for heuristic in ("dep_height", "global_weight")
]


def _signature(result):
    return (result.time, result.code_expansion, result.schedule_lengths)


@pytest.fixture(scope="module")
def reference():
    """Per-cell serial evaluation through the plain runner."""
    refs = []
    for cell in GRID:
        program = build_benchmark(cell.benchmark)
        result = evaluate_program(
            program,
            build_scheme(cell.scheme),
            machine_by_name(cell.machine),
            ScheduleOptions(heuristic=cell.heuristic),
        )
        refs.append((result.time, result.code_expansion,
                     tuple(s.length for s in result.schedules)))
    return refs


class TestEquivalence:
    def test_evaluate_cell_matches_runner(self, reference):
        for cell, ref in zip(GRID, reference):
            assert _signature(evaluate_cell(cell)) == ref, cell

    def test_serial_grid_matches_runner(self, reference):
        results = evaluate_grid(GRID, jobs=1)
        for cell, result, ref in zip(GRID, results, reference):
            assert _signature(result) == ref, cell

    def test_parallel_grid_matches_runner(self, reference):
        results = evaluate_grid(GRID, jobs=2)
        for cell, result, ref in zip(GRID, results, reference):
            assert _signature(result) == ref, cell

    def test_results_in_input_order(self):
        results = evaluate_grid(GRID, jobs=2)
        assert [r.cell for r in results] == GRID

    def test_custom_programs_evaluated_locally(self, reference):
        programs = {"compress": build_benchmark("compress")}
        results = evaluate_grid(GRID, programs=programs, jobs=2)
        for cell, result, ref in zip(GRID, results, reference):
            assert _signature(result) == ref, cell


class TestDominatorParallelismCells:
    def test_dp_cells_match_runner(self):
        cells = [
            GridCell("compress", "treegion-td:2.0", "4U", "global_weight",
                     dominator_parallelism=True),
            GridCell("compress", "treegion-td:2.0", "4U", "global_weight"),
        ]
        serial = evaluate_grid(cells, jobs=1)
        program = build_benchmark("compress")
        for cell, result in zip(cells, serial):
            ref = evaluate_program(
                program, build_scheme(cell.scheme),
                machine_by_name(cell.machine),
                ScheduleOptions(
                    heuristic=cell.heuristic,
                    dominator_parallelism=cell.dominator_parallelism,
                ),
            )
            assert result.time == ref.time
            assert result.total_merged == ref.total_merged


class TestGridHelpers:
    def test_default_grid_shape(self):
        grid = default_grid()
        assert len(grid) == 8 * 3 * 2 * 4
        assert len(set(grid)) == len(grid)

    def test_build_scheme_specs(self):
        assert build_scheme("bb").name == "bb"
        assert build_scheme("treegion").name == "treegion"
        assert build_scheme("treegion-td:1.5").name == "treegion-td(1.5)"
        assert build_scheme("treegion-td(1.5)").name == "treegion-td(1.5)"
        assert build_scheme("treegion-td").mutates
        assert build_scheme("hyperblock").name == "hyperblock"
        with pytest.raises(ValueError):
            build_scheme("nonsense")

    def test_machine_by_name(self):
        assert machine_by_name("4U").issue_width == 4
        assert machine_by_name("1U").issue_width == 1
        assert machine_by_name("16U").issue_width == 16
        with pytest.raises(ValueError):
            machine_by_name("fast")

    def test_jobs_zero_uses_cpu_count(self):
        cells = GRID[:2]
        results = evaluate_grid(cells, jobs=0)
        assert len(results) == 2

    def test_timer_collects_stages(self):
        # Direct pipeline: with the region memo on, a warm process may
        # legitimately skip every stage, so pin it off here.
        timer = StageTimer()
        evaluate_grid(GRID[:4], jobs=1, timer=timer, region_memo=False)
        for stage in ("formation", "prep", "renaming", "ddg",
                      "list_schedule", "estimate"):
            assert stage in timer.totals, stage

    def test_worker_timers_merged(self):
        timer = StageTimer()
        evaluate_grid(GRID[:4], jobs=2, timer=timer, region_memo=False)
        assert "ddg" in timer.totals
        assert timer.total > 0

    def test_cell_result_as_dict(self):
        result = evaluate_grid(GRID[:1], jobs=1)[0]
        snapshot = result.as_dict()
        assert snapshot["benchmark"] == GRID[0].benchmark
        assert snapshot["time"] == result.time


class TestHeuristicSweepSharing:
    """Shared priority keys must not leak between heuristics."""

    def test_all_heuristics_distinct_results_possible(self):
        cells = [
            GridCell("gcc", "treegion", "8U", heuristic)
            for heuristic in HEURISTICS
        ]
        shared = evaluate_grid(cells, jobs=1)
        for cell, result in zip(cells, shared):
            assert _signature(result) == _signature(evaluate_cell(cell)), (
                cell.heuristic
            )
