"""Tests for the evaluation runner, schemes, and the IR cloner."""

import pytest

from repro.ir import format_program, verify_program
from repro.ir.clone import clone_cfg, clone_function, clone_program
from repro.interp import profile_program, run_program
from repro.lang import compile_source
from repro.machine import SCALAR_1U, VLIW_4U, VLIW_8U
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import DEP_HEIGHT, GLOBAL_WEIGHT
from repro.core.tail_duplication import TreegionLimits
from repro.evaluation import (
    baseline_time,
    bb_scheme,
    evaluate_program,
    slr_scheme,
    speedup_over_baseline,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.evaluation.schemes import hyperblock_scheme

SOURCE = """
array tab[8] = {3, 1, 4, 1, 5, 9, 2, 6};
func main(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (tab[i & 7] > 3) { acc = acc + tab[i & 7]; }
        else { acc = acc - 1; }
    }
    return acc;
}
"""


@pytest.fixture()
def program():
    prog = compile_source(SOURCE)
    profile_program(prog, inputs=[[20]])
    return prog


class TestCloning:
    def test_clone_is_deep_and_identical(self, program):
        clone = clone_program(program)
        assert format_program(clone) == format_program(program)
        verify_program(clone)
        # Mutating the clone leaves the original untouched.
        fn = clone.entry_function
        fn.cfg.blocks()[0].ops[0].srcs[0] = fn.cfg.blocks()[0].ops[0].srcs[0]
        fn.cfg.blocks()[0].weight = 123456.0
        assert program.entry_function.cfg.blocks()[0].weight != 123456.0

    def test_clone_preserves_ids_and_weights(self, program):
        fn = program.entry_function
        clone = clone_function(fn)
        for original, copied in zip(fn.cfg.blocks(), clone.cfg.blocks()):
            assert original.bid == copied.bid
            assert original.weight == copied.weight
            assert [op.uid for op in original.ops] == [
                op.uid for op in copied.ops
            ]

    def test_clone_runs_identically(self, program):
        clone = clone_program(program)
        assert run_program(clone, [13])[0] == run_program(program, [13])[0]

    def test_cloned_cfg_fresh_ops_do_not_collide(self, program):
        fn = program.entry_function
        clone = clone_cfg(fn.cfg)
        existing = {op.uid for b in clone.blocks() for op in b.ops}
        from repro.ir import Opcode

        fresh = clone.new_op(Opcode.NOP)
        assert fresh.uid not in existing


class TestEvaluateProgram:
    def test_mutating_schemes_do_not_touch_input(self, program):
        before = format_program(program)
        for scheme in (superblock_scheme(),
                       treegion_td_scheme(TreegionLimits())):
            result = evaluate_program(program, scheme, VLIW_4U)
            assert format_program(program) == before
            assert result.program is not program

    def test_non_mutating_schemes_share_input(self, program):
        result = evaluate_program(program, treegion_scheme(), VLIW_4U)
        assert result.program is program
        assert result.code_expansion == 1.0

    def test_expansion_reported_for_duplicating_schemes(self, program):
        result = evaluate_program(
            program, treegion_td_scheme(TreegionLimits(code_expansion=3.0)),
            VLIW_8U,
        )
        assert result.code_expansion >= 1.0

    def test_time_positive_and_width_monotone(self, program):
        times = []
        for machine in (SCALAR_1U, VLIW_4U, VLIW_8U):
            result = evaluate_program(program, treegion_scheme(), machine,
                                      ScheduleOptions(heuristic=GLOBAL_WEIGHT))
            times.append(result.time)
            assert result.time > 0
        assert times[0] >= times[1] >= times[2]

    def test_every_scheme_produces_total_coverage(self, program):
        for scheme in (bb_scheme(), slr_scheme(), treegion_scheme(),
                       superblock_scheme(), hyperblock_scheme(),
                       treegion_td_scheme(TreegionLimits())):
            result = evaluate_program(program, scheme, VLIW_4U)
            for partition, function in zip(result.partitions,
                                           result.program.functions()):
                partition.verify_covering(function.cfg)
            assert len(result.schedules) == sum(
                len(p.regions) for p in result.partitions
            )

    def test_stats_accessors(self, program):
        result = evaluate_program(program, treegion_scheme(), VLIW_4U)
        assert result.stats.region_count == sum(
            len(p.regions) for p in result.partitions
        )
        assert result.multi_block_stats.region_count <= \
            result.stats.region_count


class TestSpeedups:
    def test_baseline_uses_1U_basic_blocks(self, program):
        base = baseline_time(program)
        direct = evaluate_program(program, bb_scheme(), SCALAR_1U,
                                  ScheduleOptions(heuristic=DEP_HEIGHT))
        assert base == pytest.approx(direct.time)

    def test_speedup_is_ratio(self, program):
        base = baseline_time(program)
        result = evaluate_program(program, treegion_scheme(), VLIW_8U)
        assert speedup_over_baseline(result, base) == pytest.approx(
            base / result.time
        )
        assert speedup_over_baseline(result, base) > 1.0

    def test_scheme_names(self):
        assert bb_scheme().name == "bb"
        assert treegion_td_scheme(
            TreegionLimits(code_expansion=2.5)
        ).name == "treegion-td(2.5)"
        assert hyperblock_scheme().name == "hyperblock"
