"""CLI exit-code contract: bad input is exit 2 with a one-line error.

The convention the CLI follows (and this sweep enforces):

* ``0`` — success;
* ``1`` — the tool ran but the result is a failure (failed validation
  seeds, lint errors, interpreter/simulator disagreement);
* ``2`` — the invocation itself is bad (missing file, unknown scheme,
  malformed grid spec, unreachable service) — reported as exactly one
  ``repro: error: ...`` line on stderr, never a traceback.
"""

from __future__ import annotations

import pytest

from repro import __version__
from repro.cli import main


def _stderr_error_line(capsys) -> str:
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line]
    assert len(lines) == 1, f"expected one error line, got: {captured.err!r}"
    assert lines[0].startswith("repro: error: ")
    assert "Traceback" not in captured.err
    return lines[0]


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_package_dunder_version(self):
        assert __version__ and __version__[0].isdigit()


class TestBadInputSweep:
    def test_run_missing_file(self, capsys):
        assert main(["run", "/no/such/program.mc"]) == 2
        assert "cannot load" in _stderr_error_line(capsys)

    def test_run_unparsable_file(self, tmp_path, capsys):
        bad = tmp_path / "garbage.ir"
        bad.write_text("func this is not ( valid IR\n")
        assert main(["run", str(bad)]) == 2
        assert "cannot load" in _stderr_error_line(capsys)

    def test_run_bad_scheme_spec(self, tmp_path, capsys):
        source = tmp_path / "ok.mc"
        source.write_text("func main() { return 0; }\n")
        assert main(["run", str(source), "--scheme", "nonsense"]) == 2
        _stderr_error_line(capsys)

    def test_bench_bad_scheme_spec(self, capsys):
        assert main(["bench", "--benchmarks", "compress",
                     "--schemes", "treegion,bogus"]) == 2
        _stderr_error_line(capsys)

    def test_validate_bad_grid_axis(self, capsys):
        assert main(["validate", "--seeds", "1",
                     "--grid", "flavours=mint"]) == 2
        assert "axis" in _stderr_error_line(capsys)

    def test_validate_malformed_grid(self, capsys):
        assert main(["validate", "--seeds", "1", "--grid", "bogus"]) == 2
        _stderr_error_line(capsys)

    def test_warm_bad_grid(self, tmp_path, capsys):
        assert main(["warm", "--cache-dir", str(tmp_path / "store"),
                     "--benchmarks", "compress",
                     "--grid", "machines"]) == 2
        _stderr_error_line(capsys)

    def test_warm_missing_file(self, tmp_path, capsys):
        assert main(["warm", "/no/such/program.mc",
                     "--cache-dir", str(tmp_path / "store")]) == 2
        assert "cannot load" in _stderr_error_line(capsys)

    def test_lint_needs_file_or_corpus(self, capsys):
        assert main(["lint"]) == 2
        assert "exactly one" in _stderr_error_line(capsys)

    def test_client_unreachable_endpoint(self, tmp_path, capsys):
        missing = f"unix://{tmp_path / 'nobody-home.sock'}"
        assert main(["client", "--endpoint", missing, "--ping"]) == 2
        assert "cannot reach service" in _stderr_error_line(capsys)

    def test_client_deprecated_socket_notes_then_errors(self, tmp_path,
                                                        capsys):
        # --socket still works as a shim, but adds a deprecation note
        # line ahead of the one-line error contract.
        missing = str(tmp_path / "nobody-home.sock")
        assert main(["client", "--socket", missing, "--ping"]) == 2
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line]
        assert len(lines) == 2, err
        assert "deprecated" in lines[0] and "--endpoint" in lines[0]
        assert "cannot reach service" in lines[1]

    def test_client_needs_file_or_op(self, tmp_path, capsys):
        missing = f"unix://{tmp_path / 'nobody-home.sock'}"
        assert main(["client", "--endpoint", missing]) == 2
        assert "--ping" in _stderr_error_line(capsys)

    def test_client_bad_endpoint_scheme(self, capsys):
        assert main(["client", "--endpoint", "http://host:80",
                     "--ping"]) == 2
        _stderr_error_line(capsys)
