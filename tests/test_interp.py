"""Tests for the sequential interpreter and the profiler."""

import pytest

from repro.ir import CompareCond, Function, IRBuilder, Program
from repro.interp import Interpreter, Profiler, profile_program, run_program
from repro.util.errors import InterpreterError

from tests.helpers import program_with


def _simple_program(body):
    """program computing body(builder) in one function."""
    fn = Function("main")
    b = IRBuilder(fn)
    blk = b.block()
    b.at(blk)
    body(b)
    return program_with(fn)


class TestArithmetic:
    def test_alu_ops(self):
        def body(b):
            x = b.mov(10)
            y = b.add(x, 5)
            z = b.mul(y, 2)
            w = b.sub(z, 3)
            b.ret(w)

        result, _ = run_program(_simple_program(body))
        assert result == 27

    def test_division_truncates_toward_zero(self):
        def body(b):
            b.ret(b.div(-7, 2))

        result, _ = run_program(_simple_program(body))
        assert result == -3  # C semantics, not Python floor

    def test_mod_sign_follows_dividend(self):
        def body(b):
            b.ret(b.mod(-7, 2))

        result, _ = run_program(_simple_program(body))
        assert result == -1

    def test_division_by_zero_raises(self):
        def body(b):
            b.ret(b.div(1, 0))

        with pytest.raises(InterpreterError):
            run_program(_simple_program(body))

    def test_bitwise_and_shifts(self):
        def body(b):
            x = b.or_(b.and_(12, 10), 1)    # (12&10)|1 = 9
            y = b.xor(x, 15)                # 9^15 = 6
            z = b.shl(y, 2)                 # 24
            b.ret(b.shr(z, 1))              # 12

        result, _ = run_program(_simple_program(body))
        assert result == 12

    def test_float_ops_and_latished_mix(self):
        def body(b):
            x = b.fadd(1.5, 2.25)
            y = b.fmul(x, 2.0)
            b.ret(y)

        result, _ = run_program(_simple_program(body))
        assert result == 7.5


class TestMemoryAndGlobals:
    def test_globals_initialized(self):
        fn = Function("main")
        b = IRBuilder(fn)
        blk = b.block()
        b.at(blk)
        v = b.ld(0, 0)
        b.ret(v)
        program = program_with(fn)
        program.add_global("g", initial=[42])
        result, _ = run_program(program)
        assert result == 42

    def test_store_then_load(self):
        def body(b):
            b.st(100, 0, 7)
            b.st(100, 1, 9)
            x = b.ld(100, 0)
            y = b.ld(100, 1)
            b.ret(b.add(x, y))

        result, memory = run_program(_simple_program(body))
        assert result == 16
        assert memory[100] == 7 and memory[101] == 9

    def test_untouched_memory_reads_zero(self):
        def body(b):
            b.ret(b.ld(12345, 0))

        result, _ = run_program(_simple_program(body))
        assert result == 0

    def test_undefined_register_raises(self):
        from repro.ir import RegClass, Register

        fn = Function("main")
        b = IRBuilder(fn)
        blk = b.block()
        b.at(blk)
        b.ret(Register(RegClass.GPR, 99))
        with pytest.raises(InterpreterError):
            run_program(program_with(fn))


class TestControlFlow:
    def test_branch_both_arms(self):
        from tests.helpers import diamond_function

        fn = diamond_function()
        program = program_with(fn)
        # param > 0 -> 'then' arm (mov 1); else arm (mov 2); returns 0.
        result, _ = run_program(program, [5])
        assert result == 0

    def test_loop_counts(self):
        from tests.helpers import loop_function

        program = program_with(loop_function())
        result, _ = run_program(program, [7])
        assert result == 7

    def test_switch_selects_case(self):
        from tests.helpers import switch_function

        program = program_with(switch_function(n_cases=4))
        for selector in range(4):
            result, _ = run_program(program, [selector])
            assert result == 0  # all cases return 0, but must not crash

    def test_switch_default(self):
        from tests.helpers import switch_function

        program = program_with(switch_function())
        result, _ = run_program(program, [999])
        assert result == 0

    def test_infinite_loop_detected(self):
        fn = Function("main")
        b = IRBuilder(fn)
        blk = b.block()
        other = b.block()
        b.at(blk).jump(other)
        b.at(other).jump(blk)
        # Unreachable return block to satisfy the verifier (not needed by
        # the interpreter, which never reaches it).
        dead = b.block()
        b.at(dead).ret(0)
        with pytest.raises(InterpreterError, match="steps"):
            run_program(program_with(fn), max_steps=1000)

    def test_calls_and_recursion(self):
        program = Program(entry="main")
        fib = program.new_function("fib")
        n = fib.regs.fresh_gpr()
        fib.params.append(n)
        b = IRBuilder(fib)
        entry, base, rec = b.block(), b.block(), b.block()
        b.at(entry)
        p = b.cmpp(CompareCond.LT, n, 2)
        b.br_true(p, base, rec)
        b.at(base)
        b.ret(n)
        b.at(rec)
        a = b.call("fib", [b.sub(n, 1)])
        c = b.call("fib", [b.sub(n, 2)])
        b.ret(b.add(a, c))

        main = program.new_function("main")
        m = main.regs.fresh_gpr()
        main.params.append(m)
        b2 = IRBuilder(main)
        blk = b2.block()
        b2.at(blk)
        b2.ret(b2.call("fib", [m]))
        assert run_program(program, [10])[0] == 55


class TestProfiler:
    def test_block_counts_accumulate(self):
        from tests.helpers import loop_function

        program = program_with(loop_function())
        profiler = profile_program(program, inputs=[[3], [5]])
        fn = program.entry_function
        entry, header, body, exit_bb = fn.cfg.blocks()
        assert entry.weight == 2.0
        assert body.weight == 8.0       # 3 + 5 iterations
        assert header.weight == 10.0    # (3+1) + (5+1) evaluations
        assert exit_bb.weight == 2.0

    def test_edge_weights_conserve_flow(self):
        from tests.helpers import diamond_function

        program = program_with(diamond_function())
        profile_program(program, inputs=[[1], [-1], [2]])
        fn = program.entry_function
        entry = fn.cfg.entry
        assert entry.taken_edge.weight == 2.0      # param > 0 twice
        assert entry.fallthrough_edge.weight == 1.0
        total_in = sum(e.weight for e in fn.cfg.blocks()[3].in_edges)
        assert total_in == 3.0
