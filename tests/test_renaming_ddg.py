"""Tests for compile-time renaming and DDG construction."""

import pytest

from repro.core import form_treegions
from repro.ir import Opcode, RegClass, Register
from repro.ir.liveness import compute_liveness
from repro.machine import VLIW_4U
from repro.schedule.ddg import build_ddg
from repro.schedule.prep import prepare_region
from repro.schedule.renaming import rename_region

from tests.test_regions_formation import build_figure1_like
from repro.workloads.paper_example import build_paper_example


def _prepared(fn):
    partition = form_treegions(fn.cfg)
    region = partition.region_of(fn.cfg.entry)
    liveness = compute_liveness(fn.cfg)
    problem = prepare_region(region, VLIW_4U, liveness)
    copies = rename_region(problem, liveness)
    return problem, copies, liveness


class TestRenaming:
    def test_paper_example_renames_r4_r5_not_r6(self):
        """Figure 5: bb4's r4/r5 defs get fresh names; bb8's r6 = 5 keeps
        its name because r6 is dead on the treegion's other exits."""
        program = build_paper_example()
        fn = program.entry_function
        problem, copies, _ = _prepared(fn)

        r4 = Register(RegClass.GPR, 4)
        r5 = Register(RegClass.GPR, 5)
        r6 = Register(RegClass.GPR, 6)

        defs = {}
        for sop in problem.sched_ops:
            if sop.source is not None and sop.source.opcode is Opcode.MOV:
                defs.setdefault(sop.home.name, []).append(sop.op.dest)
        # Both bb3 and bb4 define r4/r5 on divergent paths: at least one
        # side is renamed away from the original names.
        bb3_defs, bb4_defs = set(defs["bb3"]), set(defs["bb4"])
        assert not (bb3_defs & bb4_defs), "conflicting defs must diverge"
        # bb8's r6 = 5 stays r6 (the paper's speculation-without-renaming).
        assert defs["bb8"] == [r6]

    def test_exit_copies_restore_live_values(self):
        program = build_paper_example()
        fn = program.entry_function
        problem, copies, liveness = _prepared(fn)
        # Every copy maps a renamed reg back to an original live at its exit.
        assert copies, "r4/r5 renames must produce exit copies"
        for exit, original, renamed in copies:
            assert original != renamed
            assert original in liveness.live_into_edge(exit.edge)

    def test_rename_is_use_consistent(self):
        """After renaming, each path's uses read that path's defs: no op
        reads a register that a divergent path defined."""
        fn = build_figure1_like()
        problem, copies, _ = _prepared(fn)
        region = problem.region
        # For every pair of unrelated blocks, their def sets are disjoint.
        for a in region.blocks:
            for b in region.blocks:
                if a is b or region.dominates(a, b) or region.dominates(b, a):
                    continue
                defs_a = {d for s in problem.by_block[a.bid]
                          for d in s.op.defined_registers()}
                defs_b = {d for s in problem.by_block[b.bid]
                          for d in s.op.defined_registers()}
                assert not (defs_a & defs_b)


class TestDDG:
    def _ddg(self, fn):
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        liveness = compute_liveness(fn.cfg)
        problem = prepare_region(region, VLIW_4U, liveness)
        copies = rename_region(problem, liveness)
        return problem, build_ddg(problem, VLIW_4U, liveness, copies)

    def test_acyclic_and_index_forward(self):
        problem, ddg = self._ddg(build_figure1_like())
        for i, succs in enumerate(ddg.succs):
            for j, _lat in succs:
                assert j > i, "DDG edges must follow creation order"

    def test_flow_edges_carry_producer_latency(self):
        problem, ddg = self._ddg(build_figure1_like())
        # Loads (latency 2) feeding the root compare.
        loads = [s for s in problem.sched_ops if s.op.opcode is Opcode.LD]
        assert loads
        for load in loads:
            for j, lat in ddg.succs[load.index]:
                consumer = problem.sched_ops[j]
                if consumer.op.opcode is Opcode.CMPP:
                    assert lat == 2

    def test_exit_waits_for_guard_predicate(self):
        problem, ddg = self._ddg(build_figure1_like())
        for exit in problem.exits:
            sop = problem.exit_op_for(exit)
            preds = {p for p, _ in ddg.preds[sop.index]}
            srcs = sop.op.source_registers()
            pred_producers = [
                p for p in preds
                if any(d in srcs for d in problem.sched_ops[p].op.dests)
            ]
            assert pred_producers, f"{exit!r} branch has no predicate producer"

    def test_sibling_paths_are_independent(self):
        """No DDG edge crosses between unrelated blocks (after renaming)."""
        problem, ddg = self._ddg(build_figure1_like())
        region = problem.region
        for i, succs in enumerate(ddg.succs):
            a = problem.sched_ops[i].home
            for j, _ in succs:
                b = problem.sched_ops[j].home
                assert region.dominates(a, b) or region.dominates(b, a)

    def test_memory_serialized_along_path(self):
        from repro.ir import Function, IRBuilder

        fn = Function("mem")
        b = IRBuilder(fn)
        blk = b.block()
        b.at(blk)
        v = b.ld(0, 0)
        b.st(0, 1, v)
        w = b.ld(0, 1)
        b.st(0, 2, w)
        b.ret()
        problem, ddg = self._ddg(fn)
        mem = [s for s in problem.sched_ops if s.op.is_memory]
        st1 = mem[1]
        ld2 = mem[2]
        # Playdoh rule: store -> dependent load at latency 0.
        assert (ld2.index, 0) in [(j, lat) for j, lat in ddg.succs[st1.index]
                                  if j == ld2.index] or \
               (st1.index, 0) in [(p, lat) for p, lat in ddg.preds[ld2.index]
                                  if p == st1.index]
        # load -> store memory ordering costs a full cycle (the store also
        # has a flow edge from the load, whose value it writes).
        lats = [lat for p, lat in ddg.preds[mem[3].index] if p == ld2.index]
        assert 1 in lats

    def test_heights_monotone_along_edges(self):
        problem, ddg = self._ddg(build_figure1_like())
        for i, succs in enumerate(ddg.succs):
            for j, lat in succs:
                assert ddg.heights[i] >= lat + ddg.heights[j]

    def test_control_heights_make_guards_tall(self):
        """Guard CMPPs must outrank every op in their subtree (the
        control-dependence heights of the paper's DDG)."""
        problem, ddg = self._ddg(build_figure1_like())
        region = problem.region
        root_cmpp = [s for s in problem.by_block[region.root.bid]
                     if s.op.opcode is Opcode.CMPP][0]
        for sop in problem.sched_ops:
            if sop.home is not region.root:
                assert ddg.heights[root_cmpp.index] > ddg.heights[sop.index]
