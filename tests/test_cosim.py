"""Co-simulation: scheduled VLIW execution == sequential interpretation.

For every region scheme, machine model, and heuristic, executing the
schedules must produce the same return value and the same final memory as
the reference interpreter.  This exercises predication, speculation with
renaming, exit copies, dominator parallelism, tail duplication, and
latency handling all at once — if any of them is wrong, some program here
breaks.
"""

import pytest

from repro.interp import Interpreter, profile_program
from repro.lang import compile_source
from repro.machine import SCALAR_1U, VLIW_4U, VLIW_8U
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import HEURISTICS, GLOBAL_WEIGHT
from repro.core.tail_duplication import TreegionLimits
from repro.evaluation import (
    bb_scheme,
    slr_scheme,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.vliw import simulate

PROGRAMS = {
    "branches": (
        """
        var out = 0;
        func main(a, b) {
            var x = 0;
            var y = 0;
            if (a > b) { x = a - b; y = 1; }
            else { x = b - a; y = 2; }
            if (x > 10 && y == 2) { out = x * y; }
            else { out = x + y; }
            return out + y;
        }
        """,
        [(3, 9), (9, 3), (0, 100), (5, 5)],
    ),
    "loops": (
        """
        array acc[4];
        func main(n) {
            var i = 0;
            while (i < n) {
                acc[i % 4] = acc[i % 4] + i;
                i = i + 1;
            }
            var total = 0;
            for (var j = 0; j < 4; j = j + 1) { total = total + acc[j]; }
            return total;
        }
        """,
        [(0,), (1,), (7,), (13,)],
    ),
    "switches": (
        """
        func classify(v) {
            switch (v % 5) {
                case 0: { return 10; }
                case 1: { return 11; }
                case 2: { return 22; }
                case 3: { return 33; }
                default: { return -1; }
            }
        }
        func main(n) {
            var total = 0;
            for (var i = 0; i < n; i = i + 1) {
                total = total + classify(i);
            }
            return total;
        }
        """,
        [(1,), (5,), (12,)],
    ),
    "renaming_stress": (
        """
        var g = 0;
        func main(a, b) {
            var x = 1;
            var y = 2;
            var z = 3;
            if (a < b) { x = 10; y = 20; z = x + y; }
            else { x = 100; y = 200; z = x - y; }
            g = x + y + z;
            if (z > 0) { x = z; } else { x = 0 - z; }
            return x + g;
        }
        """,
        [(1, 2), (2, 1), (5, 5)],
    ),
    "stores_on_paths": (
        """
        array buf[8];
        func main(a) {
            if (a > 0) { buf[0] = 111; buf[1] = a; }
            else { buf[0] = 222; buf[2] = 0 - a; }
            buf[3] = buf[0] + 1;
            return buf[3];
        }
        """,
        [(4,), (-4,), (0,)],
    ),
    "division_guarded": (
        """
        func main(a, b) {
            var q = 0;
            if (b != 0) { q = a / b; }
            else { q = a; }
            return q * 2;
        }
        """,
        [(7, 2), (7, 0), (-9, 4)],
    ),
    "recursion": (
        """
        func gcd(a, b) {
            if (b == 0) { return a; }
            return gcd(b, a % b);
        }
        func main(a, b) { return gcd(a, b); }
        """,
        [(12, 18), (35, 14), (17, 5)],
    ),
}

SCHEME_FACTORIES = {
    "bb": bb_scheme,
    "slr": slr_scheme,
    "treegion": treegion_scheme,
    "superblock": superblock_scheme,
    "treegion-td": lambda: treegion_td_scheme(TreegionLimits(code_expansion=3.0)),
}


def _reference(source, args):
    program = compile_source(source)
    interpreter = Interpreter(program)
    result = interpreter.run(list(args))
    return result, interpreter.memory


def _profiled_program(source, inputs):
    program = compile_source(source)
    profile_program(program, inputs=[list(i) for i in inputs])
    return program


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
def test_cosim_4U(program_name, scheme_name):
    source, inputs = PROGRAMS[program_name]
    program = _profiled_program(source, inputs)
    options = ScheduleOptions(heuristic=GLOBAL_WEIGHT,
                              dominator_parallelism=True)
    for args in inputs:
        expected, expected_memory = _reference(source, args)
        result, simulator = simulate(
            program, SCHEME_FACTORIES[scheme_name](), VLIW_4U, list(args),
            options,
        )
        assert result == expected, (
            f"{program_name}/{scheme_name}{args}: {result} != {expected}"
        )
        assert simulator.memory == expected_memory


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_cosim_all_heuristics(heuristic):
    source, inputs = PROGRAMS["renaming_stress"]
    program = _profiled_program(source, inputs)
    for machine in (SCALAR_1U, VLIW_4U, VLIW_8U):
        for args in inputs:
            expected, _ = _reference(source, args)
            result, _sim = simulate(
                program, treegion_scheme(), machine, list(args),
                ScheduleOptions(heuristic=heuristic),
            )
            assert result == expected


def test_cosim_8U_tail_dup_with_dp():
    """Tail duplication + dominator parallelism on the widest machine."""
    source, inputs = PROGRAMS["branches"]
    program = _profiled_program(source, inputs)
    options = ScheduleOptions(heuristic=GLOBAL_WEIGHT,
                              dominator_parallelism=True)
    for args in inputs:
        expected, expected_memory = _reference(source, args)
        result, simulator = simulate(
            program, treegion_td_scheme(TreegionLimits(code_expansion=3.0)),
            VLIW_8U, list(args), options,
        )
        assert result == expected
        assert simulator.memory == expected_memory


def test_dynamic_cycles_match_static_estimate():
    """When the profile matches the simulated input, the simulator's
    dynamic cycle count equals the static estimate exactly — validating
    the paper's estimation methodology within this framework."""
    from repro.evaluation import evaluate_program

    source, _ = PROGRAMS["loops"]
    args = (9,)
    program = compile_source(source)
    profile_program(program, inputs=[list(args)])
    options = ScheduleOptions(heuristic=GLOBAL_WEIGHT)

    static = evaluate_program(program, treegion_scheme(), VLIW_4U, options)
    _result, simulator = simulate(program, treegion_scheme(), VLIW_4U,
                                  list(args), options)
    assert simulator.cycles == pytest.approx(static.time)


def test_workload_library_cosimulates_under_all_schemes():
    """The full minic workload library (sort, fib, matmul, hash, state
    machine) must execute correctly under every scheme at 4 issue."""
    from repro.evaluation.schemes import hyperblock_scheme
    from repro.workloads.minic_programs import (
        build_minic_program,
        minic_program_names,
    )

    options = ScheduleOptions(heuristic=GLOBAL_WEIGHT,
                              dominator_parallelism=True)
    for name in minic_program_names():
        program, args = build_minic_program(name)
        expected = Interpreter(program).run(args)
        profile_program(program, inputs=[args])
        for scheme in (treegion_scheme(),
                       treegion_td_scheme(TreegionLimits(code_expansion=2.0)),
                       superblock_scheme(), hyperblock_scheme()):
            result, _sim = simulate(program, scheme, VLIW_4U, args, options)
            assert result == expected, f"{name}/{scheme.name}"


def test_wider_machines_never_slower_dynamically():
    source, inputs = PROGRAMS["switches"]
    program = _profiled_program(source, inputs)
    options = ScheduleOptions(heuristic=GLOBAL_WEIGHT)
    args = list(inputs[-1])
    cycles = []
    for machine in (SCALAR_1U, VLIW_4U, VLIW_8U):
        _res, simulator = simulate(program, treegion_scheme(), machine,
                                   args, options)
        cycles.append(simulator.cycles)
    assert cycles[0] >= cycles[1] >= cycles[2]
