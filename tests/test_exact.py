"""The exact branch-and-bound backend and the optimality-gap report.

The load-bearing check is the brute-force cross-check: on every small
region of a mixed corpus, an exhaustive enumeration over per-cycle issue
subsets (no pruning beyond legality and a depth cap) must agree with the
branch-and-bound optimum.  The rest certifies the integration surface:
budget-exceeded runs fall back to the best heuristic schedule
bit-identically, the region memo replays exact schedules, exact
schedules lint clean and co-simulate with the interpreter, and the gap
report's numbers are pinned on deterministic workloads.
"""

import pytest

from repro.api import machine as resolve_machine
from repro.api import make_scheme
from repro.exact import (
    DEFAULT_NODE_BUDGET,
    branch_and_bound,
    gap_program,
    gap_summary,
    solve_region,
)
from repro.exact.backend import BUDGET_EXCEEDED, PROVEN
from repro.ir.analysis_cache import liveness_of
from repro.ir.clone import clone_program
from repro.machine import VLIW_4U
from repro.schedule import ScheduleOptions, schedule_region
from repro.schedule.priorities import HEURISTICS
from repro.workloads import (
    build_biased_treegion,
    build_linearized_treegion,
    build_paper_example,
    build_wide_shallow_treegion,
)
from repro.workloads.minic_programs import build_minic_program


# ----------------------------------------------------------------------
# Helpers


def _regions(program, scheme_spec, machine_spec):
    """Yield (region, machine, liveness) the way the gap driver forms them."""
    scheme = make_scheme(scheme_spec)
    machine = resolve_machine(machine_spec)
    worked = clone_program(program) if scheme.mutates else program
    for function in worked.functions():
        liveness = liveness_of(function.cfg)
        for region in scheme.form(function.cfg):
            yield region, machine, liveness


def _bundles(schedule):
    """A comparable snapshot of one schedule's placement."""
    return [
        (cycle, tuple(sop.index for sop in bundle))
        for cycle, bundle in schedule.iter_bundles()
    ]


def brute_force_optimum(problem, ddg, machine, seed_length):
    """Exhaustive minimum schedule length, no cleverness.

    Enumerates every subset of the ready ops (including the empty one —
    deliberate idling is allowed) at every cycle, bounded only by the
    legality rules the list scheduler obeys and by ``seed_length`` (the
    length of a known legal schedule, used purely as a depth cap).
    Exponential; callers keep regions at <= 6 ops.
    """
    ddg.finalize()
    n = len(problem.sched_ops)
    if n == 0:
        return 0
    succ_ptr, succ_dst, succ_lat = ddg.succ_ptr, ddg.succ_dst, ddg.succ_lat
    is_mem = [s.op.is_memory for s in problem.sched_ops]
    is_br = [s.op.is_branch for s in problem.sched_ops]
    width = machine.issue_width
    mem_cap = machine.max_memory_per_cycle
    br_cap = machine.max_branches_per_cycle

    release = [1] * n
    waiting = list(ddg.in_degree)
    placed = [False] * n
    best = [seed_length]

    def rec(t, remaining):
        if remaining == 0:
            if t - 1 < best[0]:
                best[0] = t - 1
            return
        if t > best[0]:
            return
        ready = [i for i in range(n)
                 if not placed[i] and waiting[i] == 0 and release[i] <= t]
        for bits in range(1 << len(ready)):
            subset = [ready[k] for k in range(len(ready))
                      if bits >> k & 1]
            if len(subset) > width:
                continue
            if (mem_cap is not None
                    and sum(1 for i in subset if is_mem[i]) > mem_cap):
                continue
            if (br_cap is not None
                    and sum(1 for i in subset if is_br[i]) > br_cap):
                continue
            undo = []
            for i in subset:
                placed[i] = True
                for e in range(succ_ptr[i], succ_ptr[i + 1]):
                    dst = succ_dst[e]
                    waiting[dst] -= 1
                    undo.append((dst, release[dst]))
                    candidate = t + succ_lat[e]
                    if candidate > release[dst]:
                        release[dst] = candidate
            rec(t + 1, remaining - len(subset))
            for dst, old in reversed(undo):
                release[dst] = old
            for i in subset:
                placed[i] = False
                for e in range(succ_ptr[i], succ_ptr[i + 1]):
                    waiting[succ_dst[e]] += 1

    rec(1, n)
    return best[0]


def _small_corpus():
    programs = [
        ("paper-example", build_paper_example()),
        ("biased", build_biased_treegion()),
        ("linearized", build_linearized_treegion()),
        ("wide-shallow", build_wide_shallow_treegion()),
    ]
    program, _args = build_minic_program("fib")
    programs.append(("minic-fib", program))
    return programs


# ----------------------------------------------------------------------
# The search itself


class TestBruteForceCrossCheck:
    def test_bnb_matches_exhaustive_enumeration(self):
        """On every <=6-op region of the small corpus, the B&B optimum
        equals the exhaustive minimum — for a narrow and a wide machine."""
        checked = 0
        nontrivial = 0
        for _name, program in _small_corpus():
            for scheme in ("bb", "treegion"):
                for machine_spec in ("2U", "4U"):
                    for region, machine, liveness in _regions(
                            program, scheme, machine_spec):
                        schedule, info, problem, ddg = solve_region(
                            region, machine, liveness)
                        if len(problem.sched_ops) > 6:
                            continue
                        assert info.status == PROVEN
                        expected = brute_force_optimum(
                            problem, ddg, machine, info.incumbent_length)
                        assert info.optimum == expected, (
                            f"{scheme}/{machine_spec} region "
                            f"bb{region.root.bid}: bnb={info.optimum} "
                            f"brute={expected}"
                        )
                        assert schedule.length == info.optimum
                        checked += 1
                        if len(problem.sched_ops) >= 4:
                            nontrivial += 1
        assert checked >= 20
        assert nontrivial >= 5

    def test_branch_and_bound_trivial_cases(self):
        # No ops: already optimal at zero cycles.
        result = branch_and_bound(
            0, [0], [0], [], [], [], [], 4, None, 1,
            incumbent=0, node_budget=100)
        assert result.proven and result.length == 0
        # One op, incumbent already matches the only possible length.
        result = branch_and_bound(
            1, [0, 0], [0, 0], [], [], [False], [False], 4, None, 1,
            incumbent=1, node_budget=100)
        assert result.proven and result.length == 1


class TestBudgetExceeded:
    def _hard_region(self):
        """A corpus region whose best heuristic height exceeds the bound
        (so the search genuinely runs): go/bb on 4U has one."""
        from repro.workloads import build_benchmark

        program = build_benchmark("go")
        for region, machine, liveness in _regions(program, "bb", "4U"):
            _schedule, info, _problem, _ddg = solve_region(
                region, machine, liveness, budget=0)
            if info.status == BUDGET_EXCEEDED:
                return region, machine, liveness
        pytest.fail("no budget-limited region found in go/bb/4U")

    def test_fallback_is_best_heuristic_bit_identical(self):
        region, machine, liveness = self._hard_region()
        schedule, info, _problem, _ddg = solve_region(
            region, machine, liveness, budget=0)
        assert info.status == BUDGET_EXCEEDED
        assert not info.proven
        assert info.optimum is None
        assert schedule.length == info.incumbent_length == info.length
        # The best-of-4 heuristic schedule, reproduced independently.
        best = None
        for heuristic in HEURISTICS:
            candidate = schedule_region(
                region, machine,
                ScheduleOptions(heuristic=heuristic), liveness)
            if best is None or candidate.length < best.length:
                best = candidate
        assert schedule.length == best.length
        assert _bundles(schedule) == _bundles(best)
        assert schedule.weighted_time == best.weighted_time

    def test_budget_exceeded_is_deterministic(self):
        region, machine, liveness = self._hard_region()
        first = solve_region(region, machine, liveness, budget=500)
        second = solve_region(region, machine, liveness, budget=500)
        assert first[1].nodes == second[1].nodes
        assert first[1].status == second[1].status
        assert _bundles(first[0]) == _bundles(second[0])

    def test_larger_budget_proves_the_region(self):
        region, machine, liveness = self._hard_region()
        schedule, info, _problem, _ddg = solve_region(
            region, machine, liveness, budget=DEFAULT_NODE_BUDGET)
        assert info.status == PROVEN
        assert schedule.length == info.optimum <= info.incumbent_length


# ----------------------------------------------------------------------
# Pipeline integration


class TestExactBackendOptions:
    def test_unknown_backend_rejected(self):
        region, machine, liveness = next(_regions(
            build_paper_example(), "treegion", "4U"))
        with pytest.raises(ValueError, match="unknown backend"):
            schedule_region(region, machine,
                            ScheduleOptions(backend="optimal"), liveness)

    def test_exact_rejects_dp_and_copies(self):
        region, machine, liveness = next(_regions(
            build_paper_example(), "treegion", "4U"))
        for options in (
            ScheduleOptions(backend="exact", dominator_parallelism=True),
            ScheduleOptions(backend="exact", schedule_copies=True),
        ):
            with pytest.raises(ValueError, match="backend='exact'"):
                schedule_region(region, machine, options, liveness)

    def test_exact_rejects_hyperblocks(self):
        from repro.regions.hyperblock import form_hyperblocks

        program = build_paper_example()
        function = program.entry_function
        region = next(iter(form_hyperblocks(function.cfg)))
        with pytest.raises(ValueError, match="hyperblock"):
            schedule_region(region, VLIW_4U,
                            ScheduleOptions(backend="exact"))

    def test_exact_never_longer_certified(self):
        """backend='exact' passes the certifier and never exceeds the
        heuristic height on any corpus region."""
        program = build_paper_example()
        for region, machine, liveness in _regions(
                program, "treegion", "4U"):
            heuristic = schedule_region(
                region, machine, ScheduleOptions(certify=True), liveness)
            exact = schedule_region(
                region, machine,
                ScheduleOptions(backend="exact", certify=True), liveness)
            assert exact.length <= heuristic.length
            # Bundles cover exactly the reported height.
            cycles = [cycle for cycle, _ in exact.iter_bundles()]
            assert max(cycles) == exact.length


class TestExactCosim:
    @pytest.mark.parametrize("name,machine", [
        ("fib", "4U"), ("sort", "8U"), ("statemachine", "4U"),
    ])
    def test_exact_schedules_simulate_correctly(self, name, machine):
        from repro.evaluation import treegion_scheme
        from repro.interp import Interpreter, profile_program
        from repro.vliw import simulate

        program, args = build_minic_program(name)
        profile_program(program, inputs=[args])
        expected = Interpreter(program).run(args)
        result, simulator = simulate(
            program, treegion_scheme(), resolve_machine(machine), args,
            ScheduleOptions(backend="exact", certify=True))
        assert result == expected
        assert simulator.cycles > 0


class TestExactMemoAndEngine:
    def test_grid_cell_backend_flows_through(self):
        from repro.evaluation.engine import GridCell, evaluate_grid

        program = build_paper_example()
        cells = [
            GridCell("p", "treegion", "4U", "global_weight"),
            GridCell("p", "treegion", "4U", "global_weight",
                     backend="exact"),
        ]
        heuristic, exact = evaluate_grid(cells, programs={"p": program})
        assert exact.time <= heuristic.time
        assert all(
            e <= h for e, h in
            zip(sorted(exact.schedule_lengths),
                sorted(heuristic.schedule_lengths))
        )

    def test_memo_replays_exact_bit_identical(self, tmp_path):
        from repro.evaluation.engine import GridCell, evaluate_grid
        from repro.schedule.memo import RegionMemo
        from repro.serve.store import ArtifactStore

        program = build_paper_example()
        cells = [GridCell("p", "treegion", "4U", "global_weight",
                          backend="exact")]
        cold = evaluate_grid(cells, programs={"p": program})[0]

        memo = RegionMemo()
        first = evaluate_grid(cells, programs={"p": program},
                              region_memo=memo)[0]
        warm = evaluate_grid(cells, programs={"p": program},
                             region_memo=memo)[0]
        assert memo.stats()["hits"] > 0
        for result in (first, warm):
            assert result.time == cold.time
            assert result.schedule_lengths == cold.schedule_lengths

        # Content-addressed store replay across fresh memo instances.
        store = ArtifactStore(str(tmp_path))
        evaluate_grid(cells, programs={"p": program},
                      region_memo=RegionMemo(store=store))
        fresh = RegionMemo(store=store)
        replayed = evaluate_grid(cells, programs={"p": program},
                                 region_memo=fresh)[0]
        assert fresh.stats()["store_hits"] > 0
        assert replayed.time == cold.time
        assert replayed.schedule_lengths == cold.schedule_lengths

    def test_exact_and_heuristic_store_keys_differ(self):
        from repro.serve.store import region_key

        legacy = region_key("r", "m", "global_weight", False, False)
        assert legacy == region_key("r", "m", "global_weight", False,
                                    False, backend="heuristic",
                                    exact_budget=123)
        exact = region_key("r", "m", "global_weight", False, False,
                           backend="exact", exact_budget=50_000)
        assert exact != legacy
        assert exact != region_key("r", "m", "global_weight", False,
                                   False, backend="exact",
                                   exact_budget=1_000)


# ----------------------------------------------------------------------
# The gap report


class TestGapReport:
    def test_gap_regression_small_corpus(self):
        """Seed-pinned: on the deterministic small corpus every region
        proves within the default budget, bounds are sound, schedules
        lint clean, and dep_height is optimal everywhere."""
        all_rows = []
        for name, program in _small_corpus():
            result = gap_program(program, name=name)
            summary = result["summary"]
            assert summary["sound"], name
            assert summary["lint_errors"] == 0, name
            assert summary["proven"] == summary["regions"], name
            all_rows.extend(result["regions"])
        total = gap_summary(all_rows, list(HEURISTICS))
        assert total["regions"] >= 40
        assert total["proven_fraction"] == 1.0
        assert total["unsound_bounds"] == 0
        assert total["heuristics"]["dep_height"]["optimal_fraction"] == 1.0

    def test_gap_paper_example_pinned(self):
        result = gap_program(build_paper_example(), name="paper")
        summary = result["summary"]
        assert summary["regions"] == 20
        assert summary["proven"] == 20
        assert summary["budget_exceeded"] == 0
        for row in result["regions"]:
            assert row["optimum"] == row["lower_bound"]
            assert row["status"] == "proven"

    def test_gap_rejects_hyperblock_and_bad_budget(self):
        program = build_paper_example()
        with pytest.raises(ValueError, match="hyperblock"):
            gap_program(program, schemes=("hyperblock",))
        with pytest.raises(ValueError, match="budget"):
            gap_program(program, budget=-1)

    def test_max_ops_skips_large_regions(self):
        result = gap_program(build_paper_example(), max_ops=4,
                             schemes=("treegion",), machines=("4U",))
        summary = result["summary"]
        assert summary["skipped"] > 0
        assert all(row["ops"] <= 4 for row in result["regions"])

    def test_api_facade(self):
        from repro.api import gap_report

        result = gap_report(build_paper_example(), name="paper",
                            schemes=["treegion"], machines=["4U"])
        assert result["summary"]["sound"]
        assert result["machines"] == ["4U"]

    def test_exact_counters_flow_to_metrics(self):
        from repro.obs.metrics import MetricsRegistry, metrics_scope

        metrics = MetricsRegistry()
        with metrics_scope(metrics):
            gap_program(build_paper_example(), schemes=("treegion",),
                        machines=("4U",))
        assert metrics.counters["exact.regions"] > 0
        assert metrics.counters["exact.proven"] > 0


# ----------------------------------------------------------------------
# Windowed resource bounds (the tightened satellite)


class TestWindowedBounds:
    def test_windowed_floor_vs_plain_ceiling(self):
        from repro.analysis.bounds import _windowed_floor

        # Plain ceiling: ceil(6/2) = 3.  Windowed at t=3: 2 + ceil(3/2)
        # = 4 — the three late ops cannot start before cycle 3.
        assert _windowed_floor([1, 1, 1, 3, 3, 3], 2) == 4
        # t = 1 recovers the plain ceiling exactly.
        assert _windowed_floor([1, 1, 1, 1], 2) == 2
        assert _windowed_floor([], 4) == 0
        assert _windowed_floor([5], 1) == 5

    def test_windowed_never_looser_than_plain(self):
        import math

        from repro.analysis.bounds import region_lower_bounds

        for _name, program in _small_corpus():
            for region, machine, liveness in _regions(
                    program, "treegion", "4U"):
                bounds = region_lower_bounds(region, machine, liveness)
                plain = math.ceil(bounds.ops / machine.issue_width)
                assert bounds.resource >= plain

    def test_bounds_stay_sound_against_optima(self):
        for _name, program in _small_corpus():
            for region, machine, liveness in _regions(
                    program, "bb", "2U"):
                _schedule, info, _problem, _ddg = solve_region(
                    region, machine, liveness)
                if info.status == PROVEN:
                    assert info.lower_bound <= info.optimum
