"""The typed facade (repro.api) and the SchemeSpec parser."""

import pytest

import repro
from repro import api
from repro.api import (
    CellResult,
    GridCell,
    Scheme,
    SchemeSpec,
    SchemeSpecError,
)
from repro.ir import IRBuilder, Program, RegClass, Register, format_program
from repro.interp import (
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
    profile_program,
)

MINIC = """
func main(a, b) {
    var total = 0;
    for (var i = 0; i < a; i = i + 1) { total = total + b; }
    return total;
}
"""

IR_TEXT_HEADER = "program entry="


class TestSchemeSpec:
    def test_plain_kinds_round_trip(self):
        for kind in ("bb", "slr", "treegion", "superblock", "hyperblock"):
            spec = SchemeSpec.parse(kind)
            assert spec.kind == kind and spec.limit is None
            assert str(spec) == kind
            assert SchemeSpec.parse(str(spec)) == spec

    def test_treegion_td_with_limit_round_trips(self):
        spec = SchemeSpec.parse("treegion-td:2.5")
        assert spec == SchemeSpec("treegion-td", 2.5)
        assert str(spec) == "treegion-td:2.5"
        assert SchemeSpec.parse(str(spec)) == spec

    def test_treegion_td_default_limit(self):
        spec = SchemeSpec.parse("treegion-td")
        assert spec.kind == "treegion-td"
        assert spec.build().name.startswith("treegion-td")

    def test_display_form_parses(self):
        # The engine's result tables historically printed
        # "treegion-td(2.0)"; the parser accepts that form too.
        assert (SchemeSpec.parse("treegion-td(2.0)")
                == SchemeSpec.parse("treegion-td:2.0"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemeSpecError):
            SchemeSpec.parse("megablock")

    def test_limit_on_plain_kind_rejected(self):
        with pytest.raises(SchemeSpecError):
            SchemeSpec.parse("bb:2.0")

    def test_limit_below_one_rejected(self):
        with pytest.raises(SchemeSpecError):
            SchemeSpec.parse("treegion-td:0.5")

    def test_garbage_limit_rejected(self):
        with pytest.raises(SchemeSpecError):
            SchemeSpec.parse("treegion-td:lots")

    def test_spec_error_is_value_error(self):
        # Callers that predate the typed parser catch ValueError.
        assert issubclass(SchemeSpecError, ValueError)

    def test_build_dispatches_every_kind(self):
        for spec in ("bb", "slr", "treegion", "superblock", "hyperblock",
                     "treegion-td:2.0"):
            scheme = SchemeSpec.parse(spec).build()
            assert isinstance(scheme, Scheme)


class TestFacade:
    def test_load_program_from_minic_text(self):
        program = api.load_program(text=MINIC)
        assert program.has_function("main")

    def test_load_program_from_ir_text(self):
        original = api.load_program(text=MINIC)
        reloaded = api.load_program(text=format_program(original))
        assert format_program(reloaded) == format_program(original)

    def test_load_program_from_path(self, tmp_path):
        path = tmp_path / "prog.mc"
        path.write_text(MINIC)
        program = api.load_program(str(path))
        assert program.has_function("main")

    def test_load_program_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            api.load_program()
        with pytest.raises(ValueError):
            api.load_program("a path", text="some text")

    def test_make_scheme_accepts_all_spellings(self):
        from_str = api.make_scheme("treegion")
        from_spec = api.make_scheme(SchemeSpec.parse("treegion"))
        assert from_str.name == from_spec.name
        assert api.make_scheme(from_str) is from_str

    def test_machine_resolution(self):
        assert api.machine("4U").issue_width == 4
        assert api.machine("12U").issue_width == 12
        model = api.machine("8U")
        assert api.machine(model) is model
        with pytest.raises(ValueError):
            api.machine("banana")

    def test_simulate_with_spec_strings(self):
        program = api.load_program(text=MINIC)
        profile_program(program, inputs=[[4, 5]])
        result, simulator = api.simulate(program, "treegion", "4U", [4, 5])
        assert result == 20
        assert simulator.cycles > 0

    def test_evaluate_grid_matches_evaluate_cell(self):
        program = api.load_program(text=MINIC)
        profile_program(program, inputs=[[4, 5]])
        cells = [
            GridCell("tiny", scheme, "4U", "global_weight")
            for scheme in ("bb", "treegion", "treegion-td:2.0")
        ]
        rows = api.evaluate_grid(cells, programs={"tiny": program})
        reference = [api.evaluate_cell(c, program=program) for c in cells]
        assert rows == reference
        for row in rows:
            assert isinstance(row, CellResult)

    def test_evaluate_grid_ships_text_to_workers(self):
        program = api.load_program(text=MINIC)
        profile_program(program, inputs=[[4, 5]])
        cells = [
            GridCell("tiny", scheme, "4U", "global_weight")
            for scheme in ("bb", "treegion")
        ]
        texts = {"tiny": format_program(program)}
        serial = api.evaluate_grid(cells, program_texts=texts)
        parallel = api.evaluate_grid(cells, program_texts=texts, jobs=2)
        assert serial == parallel
        assert serial == api.evaluate_grid(cells, programs={"tiny": program})

    def test_validate_small_campaign(self):
        summary = api.validate(
            2, grid="schemes=bb;machines=4U", engine_every=0,
        )
        assert summary.ok
        assert summary.seeds == 2
        assert summary.cells_checked > 0

    def test_top_level_reexports(self):
        assert repro.load_program is api.load_program
        assert repro.make_scheme is api.make_scheme
        assert repro.compile_source is api.compile_source
        assert repro.simulate is api.simulate
        assert repro.evaluate_grid is api.evaluate_grid
        assert repro.SchemeSpec is SchemeSpec
        # validate() deliberately stays under repro.api: a top-level
        # re-export would be shadowed by the repro.validate subpackage.
        assert repro.api.validate is api.validate


class TestStepLimit:
    def _looping_program(self) -> Program:
        program = Program(entry="main")
        fn = program.new_function("main", [])
        builder = IRBuilder(fn)
        loop = builder.block("loop")
        builder.at(loop)
        builder.jump(loop)
        return program, loop.bid

    def test_step_limit_raises_structured_error(self):
        program, loop_bid = self._looping_program()
        interpreter = Interpreter(program, max_steps=100)
        with pytest.raises(StepLimitExceeded) as info:
            interpreter.run([])
        error = info.value
        assert error.steps == 100
        assert error.function_name == "main"
        assert error.block_id == loop_bid
        assert "main" in str(error) and "100" in str(error)

    def test_step_limit_is_an_interpreter_error(self):
        # Existing callers catch InterpreterError; the subclass must not
        # change what they observe.
        program, _ = self._looping_program()
        with pytest.raises(InterpreterError):
            Interpreter(program, max_steps=10).run([])
