"""Tests for region preparation: guards, exit branches, PBRs (prep.py)."""

import pytest

from repro.core import form_treegions
from repro.ir import CompareCond, Opcode, RegClass
from repro.ir.liveness import compute_liveness
from repro.machine import VLIW_4U, MachineModel
from repro.regions import form_basic_block_regions
from repro.schedule.prep import prepare_region

from tests.helpers import diamond_function, loop_function, switch_function
from tests.test_regions_formation import build_figure1_like

NO_BTR = MachineModel(name="nobtr", issue_width=4, use_btr=False)


def _prep(fn, former=form_treegions, machine=VLIW_4U):
    partition = former(fn.cfg)
    region = partition.region_of(fn.cfg.entry)
    liveness = compute_liveness(fn.cfg)
    return prepare_region(region, machine, liveness), region


class TestGuards:
    def test_root_is_unguarded(self):
        problem, region = _prep(build_figure1_like())
        assert problem.guard_of(region.root) is None

    def test_children_get_distinct_guards(self):
        problem, region = _prep(build_figure1_like())
        children = region.children(region.root)
        guards = [problem.guard_of(c) for c in children]
        assert all(g is not None for g in guards)
        assert len(set(guards)) == len(guards)
        for guard in guards:
            assert guard.rclass is RegClass.PRED

    def test_guard_chain_nests(self):
        """Grandchild guard CMPPs are guarded by the child's guard."""
        problem, region = _prep(build_figure1_like())
        blocks = {b.name: b for b in region.blocks}
        bb2 = blocks["bb2"]
        g2 = problem.guard_of(bb2)
        # bb2's own edge-predicate CMPP must execute under g2.
        cmpps = [
            s for s in problem.by_block[bb2.bid]
            if s.op.opcode is Opcode.CMPP and s.source is None
        ]
        assert len(cmpps) == 1
        assert cmpps[0].op.guard == g2

    def test_original_cmpp_folded_away(self):
        """The branch's compare is replaced by the 2-dest guarded CMPP
        when the predicate has no other use (as in Figure 5)."""
        problem, region = _prep(build_figure1_like())
        root_ops = problem.by_block[region.root.bid]
        cmpps = [s for s in root_ops if s.op.opcode is Opcode.CMPP]
        assert len(cmpps) == 1  # only the synthesized two-dest version
        assert len(cmpps[0].op.dests) == 2
        assert cmpps[0].source is None

    def test_brcf_flips_condition(self):
        from repro.ir import Function, IRBuilder

        fn = Function("f")
        b = IRBuilder(fn)
        e, t, f_bb = b.block(), b.block(), b.block()
        b.at(e)
        p = b.cmpp(CompareCond.LT, b.mov(1), 5)
        b.br_false(p, t, f_bb)
        b.at(t).ret()
        b.at(f_bb).ret()
        problem, region = _prep(fn)
        cmpp = [s for s in problem.by_block[e.bid]
                if s.op.opcode is Opcode.CMPP and s.source is None][0]
        # BRCF: taken when p false, so dests[0] (taken pred) computes GE.
        assert cmpp.op.cond is CompareCond.GE

    def test_switch_children_get_case_guards(self):
        fn = switch_function(n_cases=3)
        problem, region = _prep(fn)
        root = region.root
        case_cmpps = [
            s for s in problem.by_block[root.bid]
            if s.op.opcode is Opcode.CMPP and s.op.cond is CompareCond.EQ
        ]
        ninsets = [
            s for s in problem.by_block[root.bid]
            if s.op.opcode is Opcode.NINSET
        ]
        assert len(case_cmpps) == 3
        assert len(ninsets) == 1  # default edge
        # NINSET lists every case value.
        assert len(ninsets[0].op.srcs) == 1 + 3


class TestExitOps:
    def test_every_exit_has_an_op(self):
        for make in (diamond_function, loop_function, switch_function,
                     build_figure1_like):
            problem, region = _prep(make())
            assert len(problem.exits) == len(region.exits())
            for exit in problem.exits:
                sop = problem.exit_op_for(exit)
                assert sop.exit is exit

    def test_exit_branches_are_predicated(self):
        problem, region = _prep(build_figure1_like())
        for exit in problem.exits:
            sop = problem.exit_op_for(exit)
            assert sop.op.opcode is Opcode.BRCT
            pred = sop.op.srcs[0]
            assert pred.rclass is RegClass.PRED

    def test_ret_exit_keeps_ret_op(self):
        fn = diamond_function()
        partition = form_treegions(fn.cfg)
        join = fn.cfg.blocks()[3]
        region = partition.region_of(join)
        liveness = compute_liveness(fn.cfg)
        problem = prepare_region(region, VLIW_4U, liveness)
        ret_exits = [e for e in problem.exits if e.is_return]
        assert len(ret_exits) == 1
        assert problem.exit_op_for(ret_exits[0]).op.opcode is Opcode.RET

    def test_unguarded_single_exit_is_bru(self):
        """A single-block region ending in a jump exits via plain BRU."""
        fn = loop_function()
        partition = form_basic_block_regions(fn.cfg)
        entry_region = partition.region_of(fn.cfg.entry)
        problem = prepare_region(entry_region, VLIW_4U,
                                 compute_liveness(fn.cfg))
        exit_op = problem.exit_op_for(problem.exits[0])
        assert exit_op.op.opcode is Opcode.BRU
        assert exit_op.op.guard is None


class TestPBR:
    def test_one_pbr_per_branch_when_btr_on(self):
        problem, region = _prep(build_figure1_like(), machine=VLIW_4U)
        pbrs = [s for s in problem.sched_ops if s.op.opcode is Opcode.PBR]
        branches = [s for s in problem.sched_ops
                    if s.exit is not None and not s.exit.is_return]
        assert len(pbrs) == len(branches)
        # Branch reads the BTR its PBR wrote.
        btrs = {p.op.dest for p in pbrs}
        for branch in branches:
            read = [s for s in branch.op.srcs
                    if getattr(s, "rclass", None) is RegClass.BTR]
            assert len(read) == 1 and read[0] in btrs

    def test_no_pbr_without_btr(self):
        problem, _ = _prep(build_figure1_like(), machine=NO_BTR)
        assert not any(s.op.opcode is Opcode.PBR for s in problem.sched_ops)


class TestSideEffects:
    def test_stores_are_guarded_off_root(self):
        from repro.ir import Function, IRBuilder

        fn = Function("st")
        b = IRBuilder(fn)
        e, t, f_bb = b.block(), b.block(), b.block()
        b.at(e)
        p = b.cmpp(CompareCond.GT, b.mov(1), 0)
        b.br_true(p, t, f_bb)
        b.at(t)
        b.st(0, 0, 7)
        b.ret()
        b.at(f_bb).ret()
        problem, region = _prep(fn)
        blocks = {blk.name: blk for blk in region.blocks}
        store = [s for s in problem.by_block[t.bid] if s.op.opcode is Opcode.ST]
        assert len(store) == 1
        assert store[0].op.guard == problem.guard_of(t)

    def test_root_stores_unguarded(self):
        from repro.ir import Function, IRBuilder

        fn = Function("st0")
        b = IRBuilder(fn)
        e = b.block()
        b.at(e)
        b.st(0, 0, 7)
        b.ret()
        problem, region = _prep(fn)
        store = [s for s in problem.sched_ops if s.op.opcode is Opcode.ST][0]
        assert store.op.guard is None

    def test_problem_never_mutates_ir(self):
        fn = build_figure1_like()
        from repro.ir.printer import format_function

        before = format_function(fn)
        _prep(fn)
        assert format_function(fn) == before
