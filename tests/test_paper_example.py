"""The worked example of Figures 1/4/5/12, end to end.

The paper schedules the topmost treegion of Figure 1 for a 4-issue
unit-latency machine and estimates 525 cycles for the superblock version
vs 500 for the treegion version (total flow weight 100: paths 35/25/40).
Our scheduler elides internal branches in favour of predicate flow, so its
absolute schedules are a little tighter than the figures, but every
qualitative claim of the example must hold, and both versions must
execute correctly.
"""

import pytest

from repro.core import TreegionLimits, form_treegions, form_treegions_td
from repro.interp import run_program
from repro.ir import Opcode, RegClass, Register, verify_program
from repro.ir.clone import clone_program
from repro.schedule import ScheduleOptions, schedule_region
from repro.schedule.priorities import GLOBAL_WEIGHT
from repro.evaluation import (
    evaluate_program,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.vliw import simulate
from repro.workloads.paper_example import (
    W_BB3,
    W_BB4,
    W_BB8,
    build_paper_example,
    paper_example_machine,
)

MACHINE = paper_example_machine(4)


@pytest.fixture()
def program():
    return build_paper_example()


class TestStructure:
    def test_verifies_and_runs(self, program):
        verify_program(program)
        # A=7 > B=3: takes the bb8 path; r6 = 5 stored to C, returned.
        result, memory = run_program(program)
        assert result == 5
        assert memory[program.globals["C"].address] == 5

    def test_topmost_treegion_matches_figure1(self, program):
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        assert {b.name for b in top.blocks} == {"bb1", "bb2", "bb3", "bb4", "bb8"}
        assert top.path_count == 3
        weights = sorted(e.weight for e in top.exits())
        assert weights == [W_BB4, W_BB3, W_BB8]

    def test_exit_weights_total_100(self, program):
        assert W_BB3 + W_BB4 + W_BB8 == 100.0


class TestFigure5Schedule:
    def test_treegion_schedule_height_and_exits(self, program):
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        sched = schedule_region(top, MACHINE,
                                ScheduleOptions(heuristic=GLOBAL_WEIGHT))
        # The paper's Figure 5 schedule retires every exit by cycle 5; our
        # branch-lean model must do at least as well.
        assert sched.length <= 5
        for record in sched.exits:
            assert record.cycle <= 5
        # The treegion estimate is at most the paper's 500 cycles.
        assert sched.weighted_time <= 500

    def test_r6_speculated_without_renaming(self, program):
        """r6 = 5 (bb8) is dead on the other exits, so it runs
        speculatively under its own name — the paper calls this out."""
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        sched = schedule_region(top, MACHINE,
                                ScheduleOptions(heuristic=GLOBAL_WEIGHT))
        r6 = Register(RegClass.GPR, 6)
        movs = [s for s in sched.all_ops()
                if s.home.name == "bb8" and s.op.opcode is Opcode.MOV]
        assert len(movs) == 1
        assert movs[0].op.dest == r6  # kept its name
        assert movs[0].op.guard is None  # executed unconditionally

    def test_r4_r5_renamed_across_arms(self, program):
        """Figure 5's shaded ops: bb3/bb4 both define r4/r5, so one side
        is renamed (r4a/r5a in the figure) with exit copies recorded."""
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        top = partition.region_of(fn.cfg.entry)
        sched = schedule_region(top, MACHINE,
                                ScheduleOptions(heuristic=GLOBAL_WEIGHT))
        bb3_defs = {s.op.dest for s in sched.all_ops()
                    if s.home.name == "bb3" and s.op.opcode is Opcode.MOV}
        bb4_defs = {s.op.dest for s in sched.all_ops()
                    if s.home.name == "bb4" and s.op.opcode is Opcode.MOV}
        assert not (bb3_defs & bb4_defs)
        originals = {Register(RegClass.GPR, 4), Register(RegClass.GPR, 5)}
        copied = {original for _exit, original, _renamed in sched.copies}
        assert originals <= copied


class TestFigure4Comparison:
    """Figures 4/5 compare the treegion against a superblock formed from
    the (bb1, bb2, bb3) trace *without* duplicating bb5 — duplication-free
    superblock formation (expansion limit 1.0) reproduces exactly that
    region set.  Section 4 then compares tail-duplicated treegions against
    full superblocks; both orderings must hold."""

    def test_treegion_beats_trace_superblock(self, program):
        from repro.regions import SuperblockLimits

        options = ScheduleOptions(heuristic=GLOBAL_WEIGHT)
        tree = evaluate_program(program, treegion_scheme(), MACHINE, options)
        sb = evaluate_program(
            program, superblock_scheme(SuperblockLimits(expansion_limit=1.0)),
            MACHINE, options,
        )
        assert tree.time < sb.time

    def test_tail_dup_treegion_beats_superblock(self, program):
        options = ScheduleOptions(heuristic=GLOBAL_WEIGHT,
                                  dominator_parallelism=True)
        tree = evaluate_program(
            program, treegion_td_scheme(TreegionLimits(code_expansion=3.0)),
            MACHINE, options,
        )
        sb = evaluate_program(program, superblock_scheme(), MACHINE, options)
        assert tree.time <= sb.time

    def test_example_magnitudes(self, program):
        """The paper's 525 vs 500 estimate covers the treegion's five
        blocks plus the bb4/bb8 continuations; program-wide our numbers
        differ in absolute terms but stay in the same ballpark and order."""
        from repro.regions import SuperblockLimits

        options = ScheduleOptions(heuristic=GLOBAL_WEIGHT)
        tree = evaluate_program(program, treegion_scheme(), MACHINE, options)
        sb = evaluate_program(
            program, superblock_scheme(SuperblockLimits(expansion_limit=1.0)),
            MACHINE, options,
        )
        assert 300 <= tree.time <= 1000
        assert tree.time <= sb.time <= 1.3 * tree.time


class TestFigure12TailDuplication:
    def test_bb5_duplicated_and_folded(self, program):
        worked = clone_program(program)
        fn = worked.entry_function
        partition = form_treegions_td(fn.cfg,
                                      TreegionLimits(code_expansion=3.0))
        top = partition.region_of(fn.cfg.entry)
        names = [b.name for b in top.blocks]
        assert "bb5" in names and "bb5.dup" in names

    def test_dominator_parallelism_merges_r6_mov(self, program):
        """Figure 12's discussion: the duplicated 'r6 = 0' from bb5/bb5a
        can be speculated into a common dominator and merged to one op."""
        worked = clone_program(program)
        fn = worked.entry_function
        partition = form_treegions_td(fn.cfg,
                                      TreegionLimits(code_expansion=3.0))
        top = partition.region_of(fn.cfg.entry)
        sched = schedule_region(
            top, MACHINE,
            ScheduleOptions(heuristic=GLOBAL_WEIGHT,
                            dominator_parallelism=True),
        )
        assert sched.merged, "expected at least one dominator-parallel merge"

    def test_scheduled_example_executes_correctly(self, program):
        for scheme in (treegion_scheme(),
                       treegion_td_scheme(TreegionLimits(code_expansion=3.0)),
                       superblock_scheme()):
            result, simulator = simulate(
                program, scheme, MACHINE, [],
                ScheduleOptions(heuristic=GLOBAL_WEIGHT,
                                dominator_parallelism=True),
            )
            assert result == 5
            address = program.globals["C"].address
            assert simulator.memory[address] == 5
