"""Tests for list scheduling: resources, latencies, exits, heuristics."""

import pytest

from repro.core import TreegionLimits, form_treegions, form_treegions_td
from repro.ir import CompareCond, Function, IRBuilder, Opcode
from repro.ir.clone import clone_function
from repro.machine import SCALAR_1U, VLIW_4U, VLIW_8U, MachineModel
from repro.regions import form_basic_block_regions
from repro.schedule import ScheduleOptions, schedule_region
from repro.schedule.priorities import (
    DEP_HEIGHT,
    EXIT_COUNT,
    GLOBAL_WEIGHT,
    HEURISTICS,
    WEIGHTED_COUNT,
)
from repro.schedule.scheduler import schedule_partition

from tests.helpers import diamond_function, switch_function
from tests.test_regions_formation import build_figure1_like


def _top_schedule(fn, machine=VLIW_4U, **opts):
    partition = form_treegions(fn.cfg)
    region = partition.region_of(fn.cfg.entry)
    return schedule_region(region, machine, ScheduleOptions(**opts))


class TestResourceConstraints:
    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_issue_width_respected(self, width):
        machine = MachineModel(name=f"{width}w", issue_width=width)
        sched = _top_schedule(build_figure1_like(), machine)
        for multiop in sched.cycles:
            assert len(multiop) <= width

    def test_narrower_machine_never_faster(self):
        fn = build_figure1_like()
        t1 = _top_schedule(fn, SCALAR_1U).weighted_time
        t4 = _top_schedule(fn, VLIW_4U).weighted_time
        t8 = _top_schedule(fn, VLIW_8U).weighted_time
        assert t1 >= t4 >= t8

    def test_memory_cap(self):
        machine = MachineModel(name="m", issue_width=8, max_memory_per_cycle=1)
        sched = _top_schedule(build_figure1_like(), machine)
        for multiop in sched.cycles:
            assert sum(1 for s in multiop if s.op.is_memory) <= 1

    def test_branch_cap(self):
        machine = MachineModel(name="b", issue_width=8, max_branches_per_cycle=1)
        sched = _top_schedule(build_figure1_like(), machine)
        for multiop in sched.cycles:
            assert sum(1 for s in multiop if s.op.is_branch) <= 1

    def test_all_ops_scheduled_once(self):
        sched = _top_schedule(build_figure1_like())
        seen = set()
        for sop in sched.all_ops():
            assert sop.index not in seen
            seen.add(sop.index)


class TestDependenceTiming:
    def test_latencies_respected(self):
        fn = build_figure1_like()
        partition = form_treegions(fn.cfg)
        for region in partition:
            sched = schedule_region(region, VLIW_4U)
            by_dest = {}
            for sop in sched.all_ops():
                for dest in sop.op.defined_registers():
                    by_dest[dest] = sop
            for sop in sched.all_ops():
                for src in sop.op.source_registers():
                    producer = by_dest.get(src)
                    if producer is None or producer.cycle >= sop.cycle:
                        continue
                    latency = VLIW_4U.latency(producer.op)
                    assert sop.cycle >= producer.cycle + latency

    def test_exit_retires_no_earlier_than_live_producers(self):
        fn = build_figure1_like()
        sched = _top_schedule(fn)
        for record in sched.exits:
            assert record.cycle >= 1

    def test_single_issue_schedules_serially(self):
        fn = diamond_function()
        partition = form_basic_block_regions(fn.cfg)
        schedules = schedule_partition(partition, SCALAR_1U)
        for sched in schedules:
            for multiop in sched.cycles:
                assert len(multiop) <= 1


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_all_heuristics_complete(self, heuristic):
        for make in (build_figure1_like, diamond_function, switch_function):
            sched = _top_schedule(make(), heuristic=heuristic)
            assert sched.length > 0
            assert len(sched.exits) > 0

    def test_deterministic(self):
        for heuristic in HEURISTICS:
            a = _top_schedule(build_figure1_like(), heuristic=heuristic)
            b = _top_schedule(build_figure1_like(), heuristic=heuristic)
            assert [len(c) for c in a.cycles] == [len(c) for c in b.cycles]
            assert [r.cycle for r in a.exits] == [r.cycle for r in b.exits]

    def test_global_weight_prioritizes_hot_exit(self):
        """In a biased region, global weight retires the hot exit no later
        than dependence height does."""
        from repro.workloads.pathological import build_biased_treegion

        program = build_biased_treegion(depth=4)
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        gw = schedule_region(region, VLIW_4U,
                             ScheduleOptions(heuristic=GLOBAL_WEIGHT))
        dh = schedule_region(region, VLIW_4U,
                             ScheduleOptions(heuristic=DEP_HEIGHT))
        assert gw.weighted_time <= dh.weighted_time

    def test_exit_count_delays_hot_case_in_wide_treegion(self):
        """Figure 9's failure mode: with exit count, the hot (low exit
        count) switch destination retires later than under global weight."""
        from repro.workloads.pathological import build_wide_shallow_treegion

        program = build_wide_shallow_treegion(fanout=8, hot_case=5)
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        ec = schedule_region(region, VLIW_4U,
                             ScheduleOptions(heuristic=EXIT_COUNT))
        gw = schedule_region(region, VLIW_4U,
                             ScheduleOptions(heuristic=GLOBAL_WEIGHT))
        assert gw.weighted_time < ec.weighted_time

    def test_weighted_count_fails_on_linearized_treegion(self):
        """Figure 10: under equal weights, weighted count degenerates to
        exit count and delays the bottom (only taken) exit; global weight
        does not."""
        from repro.workloads.pathological import build_linearized_treegion

        program = build_linearized_treegion(length=6)
        fn = program.entry_function
        partition = form_treegions(fn.cfg)
        region = partition.region_of(fn.cfg.entry)
        wc = schedule_region(region, VLIW_4U,
                             ScheduleOptions(heuristic=WEIGHTED_COUNT))
        gw = schedule_region(region, VLIW_4U,
                             ScheduleOptions(heuristic=GLOBAL_WEIGHT))
        assert gw.weighted_time <= wc.weighted_time


class TestSpeculationAccounting:
    def test_speculation_happens_and_is_counted(self):
        sched = _top_schedule(build_figure1_like(), machine=VLIW_8U)
        assert sched.speculated_count > 0
        flagged = [s for s in sched.all_ops() if s.op.speculative]
        assert len(flagged) == sched.speculated_count

    def test_stores_never_speculative(self):
        fn = Function("sts")
        b = IRBuilder(fn)
        e, t, f_bb = b.block(), b.block(), b.block()
        b.at(e)
        p = b.cmpp(CompareCond.GT, b.mov(1), 0)
        b.br_true(p, t, f_bb)
        b.at(t)
        b.st(0, 0, 5)
        b.ret()
        b.at(f_bb)
        b.st(0, 0, 9)
        b.ret()
        sched = _top_schedule(fn, VLIW_8U)
        for sop in sched.all_ops():
            if sop.op.opcode is Opcode.ST:
                assert not sop.op.speculative


class TestDominatorParallelism:
    def _tail_dup_region(self):
        program_fn = clone_function(build_figure1_like())
        partition = form_treegions_td(
            program_fn.cfg, TreegionLimits(code_expansion=3.0)
        )
        return partition.region_of(program_fn.cfg.entry)

    def test_duplicates_merged(self):
        region = self._tail_dup_region()
        with_dp = schedule_region(
            region, VLIW_8U,
            ScheduleOptions(heuristic=GLOBAL_WEIGHT, dominator_parallelism=True),
        )
        without = schedule_region(
            region, VLIW_8U,
            ScheduleOptions(heuristic=GLOBAL_WEIGHT, dominator_parallelism=False),
        )
        # bb5 was duplicated; its 'mov #0' clones share an origin and
        # identical operands, so at least one merge must happen.
        assert len(with_dp.merged) > 0
        assert len(without.merged) == 0
        assert with_dp.op_count < without.op_count

    def test_merge_never_lengthens_schedule(self):
        region = self._tail_dup_region()
        for heuristic in HEURISTICS:
            with_dp = schedule_region(
                region, VLIW_4U,
                ScheduleOptions(heuristic=heuristic, dominator_parallelism=True),
            )
            without = schedule_region(
                region, VLIW_4U,
                ScheduleOptions(heuristic=heuristic, dominator_parallelism=False),
            )
            assert with_dp.weighted_time <= without.weighted_time

    def test_merged_ops_consume_no_slots(self):
        region = self._tail_dup_region()
        sched = schedule_region(
            region, VLIW_4U,
            ScheduleOptions(heuristic=GLOBAL_WEIGHT, dominator_parallelism=True),
        )
        placed = {s.index for s in sched.all_ops()}
        for merged in sched.merged:
            assert merged.index not in placed
            assert merged.merged_into is not None
            assert merged.effective_cycle == merged.merged_into.cycle
