"""Fast regression guards on the headline experimental shapes.

The full tables live in ``benchmarks/`` (minutes); these trimmed checks run
on two benchmarks in seconds so that ``pytest tests/`` alone catches a
change that silently breaks the paper's results:

* treegions give the scheduler more blocks/ops than SLRs (Tables 1-2);
* global weight beats the other heuristics and treegions beat SLRs with
  it (Figures 6/8);
* tail-duplicated treegions beat superblocks at 8 issue (Figure 13);
* expansion ordering sb < tree(2.0) < tree(3.0) (Table 3).
"""

import pytest

from repro.core import form_treegions
from repro.core.tail_duplication import TreegionLimits
from repro.machine import VLIW_4U, VLIW_8U
from repro.regions import form_slrs, partition_stats
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import (
    DEP_HEIGHT,
    EXIT_COUNT,
    GLOBAL_WEIGHT,
    WEIGHTED_COUNT,
)
from repro.evaluation import (
    baseline_time,
    evaluate_program,
    slr_scheme,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.workloads.specint import build_benchmark

BENCHMARKS = ["compress", "li"]


@pytest.fixture(scope="module")
def programs():
    return {name: build_benchmark(name) for name in BENCHMARKS}


@pytest.fixture(scope="module")
def baselines(programs):
    return {name: baseline_time(program)
            for name, program in programs.items()}


def _speedup(program, base, scheme, machine, heuristic, dp=False):
    result = evaluate_program(
        program, scheme, machine,
        ScheduleOptions(heuristic=heuristic, dominator_parallelism=dp),
    )
    return base / result.time


class TestTables1And2Shape:
    def test_treegions_strictly_larger_than_slrs(self, programs):
        for name, program in programs.items():
            function = program.entry_function
            tree = partition_stats([form_treegions(function.cfg)])
            slr = partition_stats([form_slrs(function.cfg)])
            assert tree.avg_blocks > slr.avg_blocks, name
            assert tree.avg_ops > slr.avg_ops, name


class TestFigure8Shape:
    def test_global_weight_wins(self, programs, baselines):
        for name, program in programs.items():
            base = baselines[name]
            speedups = {
                heuristic: _speedup(program, base, treegion_scheme(),
                                    VLIW_4U, heuristic)
                for heuristic in (DEP_HEIGHT, EXIT_COUNT, GLOBAL_WEIGHT,
                                  WEIGHTED_COUNT)
            }
            best = max(speedups.values())
            assert speedups[GLOBAL_WEIGHT] >= best * 0.999, name
            assert speedups[EXIT_COUNT] <= speedups[DEP_HEIGHT] * 1.01, name

    def test_treegions_beat_slrs_with_global_weight(self, programs,
                                                    baselines):
        for name, program in programs.items():
            base = baselines[name]
            tree = _speedup(program, base, treegion_scheme(), VLIW_8U,
                            GLOBAL_WEIGHT)
            slr = _speedup(program, base, slr_scheme(), VLIW_8U, DEP_HEIGHT)
            assert tree >= slr * 0.99, name


class TestFigure13Shape:
    def test_tail_dup_treegions_beat_superblocks_at_8U(self, programs,
                                                       baselines):
        for name, program in programs.items():
            base = baselines[name]
            sb = _speedup(program, base, superblock_scheme(), VLIW_8U,
                          GLOBAL_WEIGHT)
            tree = _speedup(
                program, base,
                treegion_td_scheme(TreegionLimits(code_expansion=3.0)),
                VLIW_8U, GLOBAL_WEIGHT, dp=True,
            )
            assert tree > sb, name


class TestTable3Shape:
    def test_expansion_ordering(self, programs):
        for name, program in programs.items():
            options = ScheduleOptions(heuristic=GLOBAL_WEIGHT)
            sb = evaluate_program(program, superblock_scheme(), VLIW_4U,
                                  options).code_expansion
            tree2 = evaluate_program(
                program, treegion_td_scheme(TreegionLimits(code_expansion=2.0)),
                VLIW_4U, options,
            ).code_expansion
            tree3 = evaluate_program(
                program, treegion_td_scheme(TreegionLimits(code_expansion=3.0)),
                VLIW_4U, options,
            ).code_expansion
            assert 1.0 <= sb <= tree2 * 1.02, name
            assert tree2 <= tree3, name
            assert tree3 <= 3.0, name


class TestDeterminism:
    def test_full_pipeline_is_deterministic(self, programs, baselines):
        """Formation, scheduling, and estimation are pure functions of
        their inputs: two runs agree to the bit."""
        program = programs["compress"]
        options = ScheduleOptions(heuristic=GLOBAL_WEIGHT,
                                  dominator_parallelism=True)
        scheme = treegion_td_scheme(TreegionLimits(code_expansion=3.0))
        first = evaluate_program(program, scheme, VLIW_8U, options)
        second = evaluate_program(program, scheme, VLIW_8U, options)
        assert first.time == second.time
        assert first.code_expansion == second.code_expansion
        assert first.total_copies == second.total_copies
        assert first.total_merged == second.total_merged
        assert [s.length for s in first.schedules] == \
            [s.length for s in second.schedules]
