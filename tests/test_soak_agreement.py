"""The soak harness computes every percentile two ways — exact
nearest-rank over the raw sample list, and the power-of-two-bucket
:meth:`~repro.obs.metrics.Histogram.percentile` over the same samples
in microseconds.  The exact numbers gate the load benchmark; the
histogram numbers are what a merged/serialized metrics view reports.
These tests pin the agreement bound between the two: the histogram
estimate is an upper bound on the exact percentile and is never more
than 2x it (the bucket-width contract), so neither view can silently
drift into telling a different latency story.
"""

from __future__ import annotations

import random

import pytest

from repro.obs.metrics import Histogram
from repro.serve.soak import SoakReport, percentile

QUANTILES = (50, 90, 95, 99)


def _both_ways(samples_us):
    """(exact, histogram-estimate) per quantile for one sample set."""
    histogram = Histogram()
    for value in samples_us:
        histogram.observe(value)
    exact = {q: percentile(samples_us, q) for q in QUANTILES}
    estimate = {q: histogram.percentile(q) for q in QUANTILES}
    return exact, estimate


def _assert_agreement(samples_us):
    exact, estimate = _both_ways(samples_us)
    for q in QUANTILES:
        assert estimate[q] >= exact[q], (
            f"p{q}: histogram {estimate[q]} under-reports "
            f"exact {exact[q]}")
        bound = max(2 * exact[q], 1)
        assert estimate[q] <= bound, (
            f"p{q}: histogram {estimate[q]} exceeds 2x exact "
            f"{exact[q]}")
        # Estimates are clamped to the observed range.
        assert min(samples_us) <= estimate[q] <= max(samples_us)


class TestPercentileAgreement:
    def test_uniform_latencies(self):
        _assert_agreement(list(range(1, 2001)))

    def test_heavy_tailed_latencies(self):
        # Soak-shaped: a warm bulk at ~500µs with a cold 1%-ish tail
        # out to seconds, the regime where bucket error matters most.
        rng = random.Random(7)
        samples = [rng.randint(300, 900) for _ in range(990)]
        samples += [rng.randint(200_000, 2_000_000) for _ in range(10)]
        _assert_agreement(samples)

    def test_single_sample_and_identical_samples(self):
        _assert_agreement([777])
        _assert_agreement([64] * 100)

    def test_powers_of_two_are_exact(self):
        # Bucket upper bounds land exactly on 2^k - 1; values of that
        # shape give zero divergence.
        samples = [(1 << k) - 1 for k in range(1, 12)] * 3
        exact, estimate = _both_ways(samples)
        assert exact == estimate

    def test_report_carries_both_views_consistently(self):
        report = SoakReport(clients=2, requests=6)
        latencies_s = [0.001, 0.002, 0.004, 0.032, 0.001, 0.250]
        for index, seconds in enumerate(latencies_s):
            warm = index % 2 == 0
            report.completed += 1
            report.latencies.append(seconds)
            (report.warm_latencies if warm
             else report.cold_latencies).append(seconds)
            micros = int(seconds * 1e6)
            report.histograms["all"].observe(micros)
            report.histograms["warm" if warm else "cold"].observe(micros)
        summary = report.as_dict()
        hist = summary["latency_hist_us"]
        assert set(hist) == {"all", "warm", "cold"}
        assert hist["all"]["count"] == summary["latency"]["count"] == 6
        assert (hist["warm"]["count"] + hist["cold"]["count"]) == 6
        for name, exact_key in (("all", "latency"),
                                ("warm", "warm_latency"),
                                ("cold", "cold_latency")):
            for q in (50, 95, 99):
                exact_us = summary[exact_key][f"p{q}"] * 1e6
                estimate = hist[name][f"p{q}"]
                assert estimate >= exact_us * 0.999
                assert estimate <= max(2 * exact_us, 1)

    def test_zero_and_empty_edge_cases(self):
        empty = Histogram()
        assert empty.percentile(99) is None
        assert percentile([], 99) == 0.0
        zeros = Histogram()
        for _ in range(5):
            zeros.observe(0)
        assert zeros.percentile(99) == 0
        assert percentile([0.0] * 5, 99) == 0.0

    @pytest.mark.parametrize("q", QUANTILES)
    def test_same_rank_convention(self, q):
        # Both views use nearest-rank: for n samples the exact view
        # picks ordered[ceil(n*q/100) - 1]; the histogram picks the
        # bucket holding that same rank.  With one sample per bucket
        # the two coincide on the bucket upper bound.
        samples = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
        exact, estimate = _both_ways(samples)
        assert estimate[q] == min(2 * exact[q] - 1, max(samples))
