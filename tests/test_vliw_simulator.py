"""Focused tests for the VLIW schedule simulator's execution model."""

import pytest

from repro.interp import Interpreter, profile_program
from repro.lang import compile_source
from repro.machine import MachineModel, VLIW_4U, VLIW_8U
from repro.schedule import ScheduleOptions
from repro.evaluation import bb_scheme, treegion_scheme
from repro.vliw import VLIWSimulator, schedule_program, simulate
from repro.util.errors import InterpreterError


def _prog(src, inputs):
    program = compile_source(src)
    profile_program(program, inputs=[list(i) for i in inputs])
    return program


class TestLatencySemantics:
    def test_load_latency_respected_in_results(self):
        """A 2-cycle load feeding an add must still produce the right
        value — the DDG spacing and the pending-write queue must agree."""
        src = """
        var g = 41;
        func main(a) { return g + a; }
        """
        program = _prog(src, [[1]])
        result, simulator = simulate(program, treegion_scheme(), VLIW_4U,
                                     [1])
        assert result == 42

    def test_fdiv_latency_chain(self):
        src = "func main(a) { return (a * 3 - a) / 2; }"
        program = _prog(src, [[10]])
        result, _ = simulate(program, treegion_scheme(), VLIW_8U, [10])
        assert result == 10

    def test_in_flight_writes_drain_at_region_exit(self):
        """A load issued in the exit cycle completes across the region
        boundary; the next region must see its value."""
        src = """
        var g = 7;
        func main(a) {
            var x = g;          // load lands near the region exit
            if (a > 0) { x = x + 1; }
            return x;
        }
        """
        program = _prog(src, [[1], [0]])
        for args, expected in ([1], 8), ([0], 7):
            result, _ = simulate(program, treegion_scheme(), VLIW_4U, args)
            assert result == expected


class TestPredicationSemantics:
    def test_guarded_stores_squash(self):
        src = """
        array buf[2];
        func main(a) {
            if (a > 0) { buf[0] = 1; } else { buf[1] = 1; }
            return buf[0] * 10 + buf[1];
        }
        """
        program = _prog(src, [[1], [-1]])
        assert simulate(program, treegion_scheme(), VLIW_4U, [1])[0] == 10
        assert simulate(program, treegion_scheme(), VLIW_4U, [-1])[0] == 1

    def test_speculative_division_is_dismissible(self):
        """The cold arm divides by a; speculated with a=0 it must not
        trap (Play-Doh dismissible semantics) and must not affect the
        committed result."""
        src = """
        func main(a) {
            var r = 0;
            if (a == 0) { r = 5; }
            else { r = 100 / a; }
            return r;
        }
        """
        program = _prog(src, [[0], [4]])
        assert simulate(program, treegion_scheme(), VLIW_8U, [0])[0] == 5
        assert simulate(program, treegion_scheme(), VLIW_8U, [4])[0] == 25

    def test_exactly_one_exit_fires_per_visit(self):
        src = """
        func main(a) {
            var x = 0;
            if (a > 2) { x = 1; } else { x = 2; }
            return x;
        }
        """
        program = _prog(src, [[5], [0]])
        scheduled = schedule_program(program, treegion_scheme(), VLIW_4U,
                                     ScheduleOptions())
        simulator = VLIWSimulator(scheduled)
        assert simulator.run([5]) == 1  # would raise on 0 or 2 exits


class TestAccounting:
    def test_cycles_accumulate_over_regions(self):
        src = """
        func main(n) {
            var acc = 0;
            for (var i = 0; i < n; i = i + 1) { acc = acc + i; }
            return acc;
        }
        """
        program = _prog(src, [[4]])
        _res, short = simulate(program, treegion_scheme(), VLIW_4U, [2])
        _res, longer = simulate(program, treegion_scheme(), VLIW_4U, [9])
        assert longer.cycles > short.cycles
        assert longer.region_visits > short.region_visits

    def test_region_visit_budget(self):
        src = """
        func main(n) {
            var i = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
        program = _prog(src, [[5]])
        scheduled = schedule_program(program, bb_scheme(), VLIW_4U,
                                     ScheduleOptions())
        simulator = VLIWSimulator(scheduled, max_region_visits=3)
        with pytest.raises(InterpreterError, match="budget"):
            simulator.run([1000])

    def test_argument_count_checked(self):
        program = _prog("func main(a, b) { return a + b; }", [[1, 2]])
        scheduled = schedule_program(program, bb_scheme(), VLIW_4U,
                                     ScheduleOptions())
        with pytest.raises(InterpreterError, match="expects"):
            VLIWSimulator(scheduled).run([1])

    def test_memory_matches_interpreter_including_arrays(self):
        src = """
        array out[6];
        func main(n) {
            for (var i = 0; i < n; i = i + 1) { out[i] = i * i; }
            return n;
        }
        """
        program = _prog(src, [[6]])
        reference = Interpreter(program)
        reference.run([6])
        _res, simulator = simulate(program, treegion_scheme(), VLIW_4U, [6])
        assert simulator.memory == reference.memory


class TestNarrowMachines:
    def test_one_wide_machine_executes_correctly(self):
        src = """
        func main(a, b) {
            var m = a;
            if (b > m) { m = b; }
            return m * 2;
        }
        """
        program = _prog(src, [[3, 9], [9, 3]])
        one_wide = MachineModel(name="1w", issue_width=1)
        for args, expected in ([3, 9], 18), ([9, 3], 18), ([0, 0], 0):
            result, _simulator = simulate(program, treegion_scheme(),
                                          one_wide, args)
            assert result == expected
