"""The differential validation subsystem: generator, oracle, shrinker."""

import json

import pytest

from repro import api
from repro.ir import (
    CompareCond,
    IRBuilder,
    Immediate,
    Opcode,
    Program,
    RegClass,
    Register,
    format_program,
    parse_program,
    verify_program,
)
from repro.interp import profile_program, run_program
from repro.validate import (
    Cell,
    check_generated,
    default_grid,
    generate,
    minimize_failure,
    parse_grid_spec,
    run_validation,
    write_reports,
)
from repro.validate.shrink import total_ops


class TestGenerator:
    def test_deterministic_per_seed(self):
        first = generate(7)
        second = generate(7)
        assert format_program(first.program) == format_program(second.program)
        assert first.inputs == second.inputs
        assert first.origin == second.origin

    def test_distinct_seeds_differ(self):
        texts = {format_program(generate(seed).program)
                 for seed in range(8)}
        assert len(texts) > 1

    def test_programs_verify_and_terminate(self):
        for seed in range(12):
            generated = generate(seed)
            verify_program(generated.program)
            for inputs in generated.inputs:
                run_program(generated.program, inputs,
                            max_steps=2_000_000)

    def test_both_origins_appear(self):
        origins = {generate(seed).origin for seed in range(8)}
        assert origins == {"ir", "minic"}

    def test_ir_text_round_trips(self):
        generated = generate(4)
        text = format_program(generated.program)
        assert format_program(parse_program(text)) == text


class TestOracle:
    def test_clean_on_default_grid(self):
        grid = default_grid(machines=("4U",))
        for seed in range(6):
            report = check_generated(generate(seed), grid=grid)
            assert report.ok, [m.to_json() for m in report.mismatches]
            assert report.cells_checked > 0

    def test_engine_identity_check(self):
        grid = default_grid(
            schemes=("bb", "treegion"), machines=("4U",),
        )
        report = check_generated(generate(0), grid=grid, engine_jobs=2)
        assert report.ok, [m.to_json() for m in report.mismatches]

    def test_report_serializes(self):
        report = check_generated(
            generate(1), grid=default_grid(schemes=("bb",),
                                           machines=("4U",)),
        )
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["seed"] == 1
        assert payload["ok"] is True


class TestGridSpec:
    def test_defaults(self):
        grid = parse_grid_spec(None)
        assert Cell("treegion", "4U", "global_weight") in grid
        assert Cell("hyperblock", "8U", "global_weight") in grid

    def test_custom_axes(self):
        grid = parse_grid_spec(
            "schemes=bb,treegion-td:2.0;machines=4U;"
            "heuristics=dep_height,global_weight"
        )
        assert len(grid) == 4
        assert Cell("treegion-td:2.0", "4U", "dep_height") in grid

    def test_bad_axis_rejected(self):
        with pytest.raises(ValueError):
            parse_grid_spec("flavours=bb")
        with pytest.raises(ValueError):
            parse_grid_spec("schemes")

    def test_bad_scheme_rejected_eagerly(self):
        with pytest.raises(ValueError):
            parse_grid_spec("schemes=megablock")


class TestInjectedFault:
    """A deliberate simulator fault must be found and minimized."""

    def _fault(self, monkeypatch):
        import repro.vliw.simulator as simulator_module
        from repro.interp.ops import evaluate as real_evaluate

        def faulty(opcode, values, dismissible=False):
            result = real_evaluate(opcode, values, dismissible=dismissible)
            if opcode is Opcode.MUL:
                return result + 1
            return result

        monkeypatch.setattr(simulator_module, "evaluate", faulty)

    def test_fault_found_and_shrunk_to_quarter(self, monkeypatch):
        self._fault(monkeypatch)
        grid = default_grid(schemes=("bb",), machines=("4U",))
        failing = None
        for seed in range(40):
            generated = generate(seed)
            report = check_generated(generated, grid=grid)
            if not report.ok:
                failing = (generated, report)
                break
        assert failing is not None, "corrupted MUL never surfaced"
        generated, report = failing

        failure = minimize_failure(generated, report.mismatches[0])
        assert failure.minimized_ops <= 0.25 * failure.original_ops
        assert failure.minimized_ops >= 1
        assert failure.trials > 0

        payload = json.loads(json.dumps(failure.to_json()))
        for key in ("seed", "check", "cell", "inputs", "detail",
                    "original_ops", "minimized_ops", "program_text"):
            assert key in payload
        assert payload["check"] in ("result", "memory", "cycles")
        # The minimized reproducer is well-formed, parseable IR and it
        # still contains the faulting opcode.
        minimized = parse_program(payload["program_text"])
        verify_program(minimized)
        assert " mul " in payload["program_text"]


class TestRunner:
    def test_serial_campaign_clean(self):
        summary = run_validation(
            list(range(4)),
            grid=default_grid(schemes=("bb", "treegion"),
                              machines=("4U",)),
            engine_every=0,
        )
        assert summary.ok
        assert summary.seeds == 4
        assert not summary.failures

    def test_parallel_matches_serial(self):
        grid = default_grid(schemes=("treegion",), machines=("4U",))
        serial = run_validation(list(range(4)), grid=grid, jobs=1,
                                engine_every=0)
        parallel = run_validation(list(range(4)), grid=grid, jobs=2,
                                  engine_every=0)
        assert [o.seed for o in parallel.outcomes] == \
               [o.seed for o in serial.outcomes]
        assert [o.cells_checked for o in parallel.outcomes] == \
               [o.cells_checked for o in serial.outcomes]
        assert parallel.ok == serial.ok

    def test_failure_reports_written(self, tmp_path, monkeypatch):
        import repro.vliw.simulator as simulator_module
        from repro.interp.ops import evaluate as real_evaluate

        def faulty(opcode, values, dismissible=False):
            result = real_evaluate(opcode, values, dismissible=dismissible)
            return result + 1 if opcode is Opcode.MUL else result

        monkeypatch.setattr(simulator_module, "evaluate", faulty)
        summary = run_validation(
            [1],  # known to exercise MUL under bb/4U
            grid=default_grid(schemes=("bb",), machines=("4U",)),
            engine_every=0,
            max_trials=300,
        )
        assert not summary.ok
        paths = write_reports(summary, str(tmp_path))
        assert len(paths) == 1
        payload = json.loads((tmp_path / "failure-seed1.json").read_text())
        assert payload["seed"] == 1


class TestGuardPreservation:
    """Regression: prep stripped guards from pre-predicated input ops.

    Found by this subsystem — the scheduler replaced every cloned op's
    guard with the block guard (or None for speculatable ops), turning
    conditional updates unconditional.  Pre-guarded ops must keep their
    guard under every scheme, in root and non-root blocks alike.
    """

    def _straightline_guarded(self) -> Program:
        program = Program(entry="main")
        a = Register(RegClass.GPR, 0)
        b_reg = Register(RegClass.GPR, 1)
        fn = program.new_function("main", [a, b_reg])
        fn.regs.reserve(a)
        fn.regs.reserve(b_reg)
        builder = IRBuilder(fn)
        entry = builder.block("entry")
        builder.at(entry)
        result = builder.mov(a)
        pred = builder.cmpp(CompareCond.GT, a, b_reg)
        builder.emit(Opcode.ADD, dests=[result],
                     srcs=[result, Immediate(5)], guard=pred)
        builder.ret(result)
        return program

    def _branchy_guarded(self) -> Program:
        program = Program(entry="main")
        a = Register(RegClass.GPR, 0)
        fn = program.new_function("main", [a])
        fn.regs.reserve(a)
        builder = IRBuilder(fn)
        entry = builder.block("entry")
        then_bb = builder.block("then")
        join = builder.block("join")
        builder.at(entry)
        result = builder.mov(a)
        outer = builder.cmpp(CompareCond.GT, a, 0)
        inner = builder.cmpp(CompareCond.LT, a, 10)
        builder.br_true(outer, then_bb, join)
        builder.at(then_bb)
        # Guarded op inside a non-root block: its own guard must be
        # AND-combined with the block guard, not replaced by it.
        builder.emit(Opcode.ADD, dests=[result],
                     srcs=[result, Immediate(100)], guard=inner)
        builder.fallthrough(join)
        builder.at(join)
        builder.ret(result)
        return program

    @pytest.mark.parametrize("scheme", [
        "bb", "slr", "treegion", "superblock", "treegion-td:2.0",
        "hyperblock",
    ])
    def test_guarded_ops_survive_scheduling(self, scheme):
        for build, input_sets in (
            (self._straightline_guarded, [[1, 5], [5, 1]]),
            (self._branchy_guarded, [[-3], [4], [20]]),
        ):
            for inputs in input_sets:
                program = build()
                expected, expected_memory = run_program(program, inputs)
                profile_program(program, inputs=[list(inputs)])
                result, simulator = api.simulate(
                    program, scheme, "4U", inputs,
                )
                assert result == expected, (scheme, inputs)
                assert simulator.memory == expected_memory


class TestShrinkerMechanics:
    def test_total_ops_counts_whole_program(self):
        generated = generate(2)
        assert total_ops(generated.program) == sum(
            fn.cfg.total_ops for fn in generated.program.functions()
        )
