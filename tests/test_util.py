"""Tests for repro.util: id allocation, ordered sets, stats, timing."""

import pytest

from repro.util import (
    IdAllocator,
    NULL_TIMER,
    OrderedSet,
    StageTimer,
    geometric_mean,
)


class TestIdAllocator:
    def test_allocates_consecutively(self):
        ids = IdAllocator()
        assert [ids.allocate() for _ in range(3)] == [0, 1, 2]

    def test_custom_start(self):
        ids = IdAllocator(start=7)
        assert ids.allocate() == 7

    def test_reserve_skips_past(self):
        ids = IdAllocator()
        ids.reserve(10)
        assert ids.allocate() == 11

    def test_reserve_below_next_is_noop(self):
        ids = IdAllocator(start=5)
        ids.reserve(2)
        assert ids.allocate() == 5

    def test_next_id_does_not_advance(self):
        ids = IdAllocator()
        assert ids.next_id == 0
        assert ids.next_id == 0


class TestOrderedSet:
    def test_preserves_insertion_order(self):
        s = OrderedSet([3, 1, 2])
        assert list(s) == [3, 1, 2]

    def test_duplicate_add_keeps_first_position(self):
        s = OrderedSet([1, 2])
        s.add(1)
        assert list(s) == [1, 2]

    def test_membership_and_len(self):
        s = OrderedSet("abc")
        assert "a" in s and "z" not in s
        assert len(s) == 3

    def test_pop_first_is_fifo(self):
        s = OrderedSet([5, 6, 7])
        assert s.pop_first() == 5
        assert s.pop_first() == 6

    def test_pop_first_empty_raises(self):
        with pytest.raises(KeyError):
            OrderedSet().pop_first()

    def test_discard_missing_is_silent(self):
        s = OrderedSet([1])
        s.discard(9)
        assert list(s) == [1]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            OrderedSet([1]).remove(9)

    def test_equality_with_set(self):
        assert OrderedSet([1, 2]) == {2, 1}
        assert OrderedSet([1, 2]) == OrderedSet([2, 1])

    def test_update_and_bool(self):
        s = OrderedSet()
        assert not s
        s.update([1, 2])
        assert s and len(s) == 2


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_empty_returns_neutral_factor(self):
        assert geometric_mean([]) == 1.0

    def test_zero_dominates(self):
        assert geometric_mean([0.0, 5.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([2.0, -1.0])

    def test_accepts_any_iterable(self):
        assert geometric_mean(x for x in (1.0, 4.0)) == pytest.approx(2.0)


class TestStageTimer:
    def test_stage_accumulates(self):
        timer = StageTimer()
        with timer.stage("work"):
            pass
        with timer.stage("work"):
            pass
        assert timer.counts["work"] == 2
        assert timer.totals["work"] >= 0.0

    def test_merge_and_total(self):
        a = StageTimer()
        a.add("x", 1.0)
        b = StageTimer()
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.totals["x"] == pytest.approx(3.0)
        assert a.total == pytest.approx(6.0)
        assert a.counts["x"] == 2

    def test_as_dict_and_format(self):
        timer = StageTimer()
        timer.add("ddg", 0.25, count=10)
        snapshot = timer.as_dict()
        assert snapshot["ddg"]["seconds"] == pytest.approx(0.25)
        assert "ddg" in timer.format()

    def test_null_timer_is_inert(self):
        with NULL_TIMER.stage("anything"):
            pass
        NULL_TIMER.add("anything", 1.0)
        NULL_TIMER.merge(StageTimer())
