"""Tests for repro.util: id allocation and ordered sets."""

import pytest

from repro.util import IdAllocator, OrderedSet


class TestIdAllocator:
    def test_allocates_consecutively(self):
        ids = IdAllocator()
        assert [ids.allocate() for _ in range(3)] == [0, 1, 2]

    def test_custom_start(self):
        ids = IdAllocator(start=7)
        assert ids.allocate() == 7

    def test_reserve_skips_past(self):
        ids = IdAllocator()
        ids.reserve(10)
        assert ids.allocate() == 11

    def test_reserve_below_next_is_noop(self):
        ids = IdAllocator(start=5)
        ids.reserve(2)
        assert ids.allocate() == 5

    def test_next_id_does_not_advance(self):
        ids = IdAllocator()
        assert ids.next_id == 0
        assert ids.next_id == 0


class TestOrderedSet:
    def test_preserves_insertion_order(self):
        s = OrderedSet([3, 1, 2])
        assert list(s) == [3, 1, 2]

    def test_duplicate_add_keeps_first_position(self):
        s = OrderedSet([1, 2])
        s.add(1)
        assert list(s) == [1, 2]

    def test_membership_and_len(self):
        s = OrderedSet("abc")
        assert "a" in s and "z" not in s
        assert len(s) == 3

    def test_pop_first_is_fifo(self):
        s = OrderedSet([5, 6, 7])
        assert s.pop_first() == 5
        assert s.pop_first() == 6

    def test_pop_first_empty_raises(self):
        with pytest.raises(KeyError):
            OrderedSet().pop_first()

    def test_discard_missing_is_silent(self):
        s = OrderedSet([1])
        s.discard(9)
        assert list(s) == [1]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            OrderedSet([1]).remove(9)

    def test_equality_with_set(self):
        assert OrderedSet([1, 2]) == {2, 1}
        assert OrderedSet([1, 2]) == OrderedSet([2, 1])

    def test_update_and_bool(self):
        s = OrderedSet()
        assert not s
        s.update([1, 2])
        assert s and len(s) == 2
