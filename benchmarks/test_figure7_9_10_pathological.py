"""Figures 7, 9, 10: the pathological treegion shapes, in isolation.

These three constructed CFGs are the paper's explanations for the
heuristic results:

* Figure 7 (**biased** treegion, ijpeg): one path carries all the weight;
  SLR-style focus matches or beats multi-path scheduling, and global
  weight recovers the focused schedule inside the treegion.
* Figure 9 (**wide, shallow** switch treegion, gcc/perl): "the branch
  destinations with the highest exit count are not necessarily the most
  often executed" — exit count delays the hot destination; dependence
  height is democratic; global weight picks the right destination.
* Figure 10 (**linearized** treegion, vortex): equal block weights make
  weighted count degenerate to exit count, delaying the bottom (only
  taken) exit; global weight treats all blocks equally and retires it
  sooner.
"""

from repro.core import form_treegions
from repro.machine import VLIW_4U
from repro.schedule import ScheduleOptions, schedule_region
from repro.schedule.priorities import (
    DEP_HEIGHT,
    EXIT_COUNT,
    GLOBAL_WEIGHT,
    HEURISTICS,
    WEIGHTED_COUNT,
)
from repro.workloads.pathological import (
    build_biased_treegion,
    build_linearized_treegion,
    build_wide_shallow_treegion,
)

from benchmarks.conftest import emit_table


def _times(program):
    fn = program.entry_function
    partition = form_treegions(fn.cfg)
    region = partition.region_of(fn.cfg.entry)
    return {
        heuristic: schedule_region(
            region, VLIW_4U, ScheduleOptions(heuristic=heuristic)
        ).weighted_time
        for heuristic in HEURISTICS
    }


def compute_pathological():
    return {
        "fig7_biased": _times(build_biased_treegion(depth=4)),
        "fig9_wide": _times(build_wide_shallow_treegion(fanout=10, hot_case=5)),
        "fig10_linear": _times(build_linearized_treegion(length=6)),
    }


def test_pathological_treegions(benchmark):
    results = benchmark.pedantic(compute_pathological, rounds=1, iterations=1)

    lines = ["Figures 7/9/10: weighted region time per heuristic "
             "(lower is better, 4U)"]
    lines.append(
        f"{'shape':14s} " + " ".join(f"{h[:9]:>10s}" for h in HEURISTICS)
    )
    for shape, times in results.items():
        lines.append(
            f"{shape:14s} "
            + " ".join(f"{times[h]:10.0f}" for h in HEURISTICS)
        )
    emit_table("figure7_9_10_pathological", lines)

    biased = results["fig7_biased"]
    wide = results["fig9_wide"]
    linear = results["fig10_linear"]

    # Figure 7: with a fully biased tree, the profile-guided heuristic
    # focuses the hot path at least as well as any other.
    assert biased[GLOBAL_WEIGHT] <= min(biased.values()) * 1.001

    # Figure 9: exit count delays the hot destination; global weight does
    # not; dependence height sits in between ("more democratic").
    assert wide[GLOBAL_WEIGHT] < wide[EXIT_COUNT]
    assert wide[DEP_HEIGHT] <= wide[EXIT_COUNT]

    # Figure 10: under equal weights, weighted count collapses onto exit
    # count and both lose to global weight.
    assert linear[WEIGHTED_COUNT] >= linear[GLOBAL_WEIGHT]
    assert abs(linear[WEIGHTED_COUNT] - linear[EXIT_COUNT]) <= \
        0.05 * linear[EXIT_COUNT]
