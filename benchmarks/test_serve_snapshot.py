"""Artifact-store / compile-service regression benchmark.

Runs the paper's 192-cell evaluation grid three ways —

* **direct**: :func:`repro.evaluation.engine.evaluate_grid` (the
  reference path);
* **service cold**: through :class:`repro.serve.CompileService` with an
  empty :class:`repro.serve.ArtifactStore` (every cell dispatched to
  the worker pool, then stored);
* **service warm**: a fresh service over the now-populated store
  (every cell answered from disk, the pool never consulted);

— asserts all three result lists are **byte-identical** (the service's
determinism contract) and that the warm pass is at least 5x faster than
the cold one, then writes ``BENCH_serve.json`` at the repo root so
future PRs can diff the caching trajectory.

CI smoke runs shrink the grid via ``REPRO_SERVE_BENCH_BENCHMARKS`` (a
comma-separated benchmark subset, e.g. ``compress``); the snapshot
records the grid size so shrunken runs are not mistaken for full ones.
Regenerate the committed snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/test_serve_snapshot.py -s
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.evaluation.engine import default_grid, evaluate_grid
from repro.obs import MetricsRegistry
from repro.serve import ArtifactStore, CompileService

from benchmarks.conftest import emit_table

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_serve.json"

#: The acceptance bar: a warm store answers from disk without cloning,
#: forming, or scheduling anything, so it must beat the cold pass by a
#: wide margin.  5x is deliberately loose — the measured gap is orders
#: of magnitude.
MIN_WARM_SPEEDUP = 5.0


def _grid():
    subset = os.environ.get("REPRO_SERVE_BENCH_BENCHMARKS")
    if subset:
        return default_grid(benchmarks=[
            name.strip() for name in subset.split(",") if name.strip()
        ])
    return default_grid()


def _payload_bytes(results):
    """A canonical byte serialization: 'byte-identical' means equal."""
    from repro.serve import result_to_payload

    return json.dumps(
        [result_to_payload("-", result) for result in results],
        sort_keys=True,
    ).encode("utf-8")


def test_serve_snapshot(tmp_path):
    grid = _grid()
    store_dir = str(tmp_path / "store")

    t0 = time.perf_counter()
    direct = evaluate_grid(grid, jobs=1)
    t_direct = time.perf_counter() - t0

    cold_metrics = MetricsRegistry()
    t0 = time.perf_counter()
    with CompileService(store=ArtifactStore(store_dir), jobs=2,
                        metrics=cold_metrics) as service:
        cold = service.evaluate(grid)
    t_cold = time.perf_counter() - t0

    warm_metrics = MetricsRegistry()
    warm_store = ArtifactStore(store_dir)
    t0 = time.perf_counter()
    with CompileService(store=warm_store, jobs=2,
                        metrics=warm_metrics) as service:
        warm = service.evaluate(grid)
    t_warm = time.perf_counter() - t0

    # The determinism contract: all three routes, one answer.
    assert _payload_bytes(cold) == _payload_bytes(direct)
    assert _payload_bytes(warm) == _payload_bytes(direct)

    # The warm pass never touched the pool.
    assert warm_store.hits == len(grid)
    warm_counters = warm_metrics.snapshot()["counters"]
    assert warm_counters["serve.jobs.cache_hits"] == len(grid)
    assert "serve.dispatches" not in warm_counters

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm pass ({t_warm:.3f}s) is only {speedup:.1f}x faster than "
        f"cold ({t_cold:.3f}s); bound {MIN_WARM_SPEEDUP}x"
    )

    snapshot = {
        "grid_cells": len(grid),
        "direct_seconds": round(t_direct, 3),
        "service_cold_seconds": round(t_cold, 3),
        "service_warm_seconds": round(t_warm, 3),
        "warm_speedup": round(speedup, 1),
        "identical_to_direct": True,
        "store": {
            "entries": len(warm_store),
            "bytes": warm_store.total_bytes(),
            "warm_hits": warm_store.hits,
        },
        "cold_counters": {
            name: value
            for name, value in sorted(
                cold_metrics.snapshot()["counters"].items()
            )
            if name.startswith("serve.")
        },
    }
    BENCH_FILE.write_text(json.dumps(snapshot, indent=2) + "\n")

    emit_table("serve_snapshot", [
        f"{'grid cells':32s} {len(grid):>12d}",
        f"{'direct':32s} {t_direct:>11.2f}s",
        f"{'service cold':32s} {t_cold:>11.2f}s",
        f"{'service warm':32s} {t_warm:>11.2f}s",
        f"{'warm speedup':32s} {speedup:>11.1f}x",
        f"{'store entries':32s} {len(warm_store):>12d}",
        f"{'store bytes':32s} {warm_store.total_bytes():>12d}",
    ])
