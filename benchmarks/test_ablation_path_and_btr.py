"""Ablations: path-count limit sweep and the Playdoh BTR/PBR cost.

* **Path count** (Section 4 sets it to 20): "A large number of paths in a
  treegion will lead to increased interference between paths when
  competing for schedule slots."  The sweep shows formation saturating —
  more allowed paths grow regions until the other limits bind.
* **PBR/BTR**: the branch architecture costs one op + one cycle of
  latency per branch; turning it off bounds how much of the schedule is
  branch bookkeeping.
"""

from repro.core.tail_duplication import TreegionLimits
from repro.machine import MachineModel
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import GLOBAL_WEIGHT
from repro.evaluation import (
    evaluate_program,
    treegion_scheme,
    treegion_td_scheme,
)

from benchmarks.conftest import emit_table, geometric_mean

SWEEP_BENCHMARKS = ["gcc", "m88ksim", "perl"]
PATH_LIMITS = (2, 5, 10, 20, 40)


def compute_path_sweep(lab):
    rows = {}
    options = ScheduleOptions(heuristic=GLOBAL_WEIGHT,
                              dominator_parallelism=True)
    from repro.machine import VLIW_8U

    for limit in PATH_LIMITS:
        speedups = []
        paths = []
        for bench in SWEEP_BENCHMARKS:
            program = lab.suite[bench]
            scheme = treegion_td_scheme(
                TreegionLimits(code_expansion=3.0, path_count=limit)
            )
            result = evaluate_program(program, scheme, VLIW_8U, options)
            speedups.append(lab.baseline(bench) / result.time)
            region_paths = [
                region.path_count
                for partition in result.partitions for region in partition
            ]
            paths.append(max(region_paths))
        rows[limit] = {
            "speedup": geometric_mean(speedups),
            "max_paths": max(paths),
        }
    return rows


def test_ablation_path_count(benchmark, lab):
    rows = benchmark.pedantic(compute_path_sweep, args=(lab,), rounds=1,
                              iterations=1)
    lines = [
        "Ablation: path-count limit sweep (treegion-td 3.0, 8U; geomean of "
        + ", ".join(SWEEP_BENCHMARKS) + ")",
        f"{'limit':>6s} {'speedup':>8s} {'max paths seen':>15s}",
    ]
    for limit in PATH_LIMITS:
        lines.append(
            f"{limit:6d} {rows[limit]['speedup']:8.3f} "
            f"{rows[limit]['max_paths']:15d}"
        )
    emit_table("ablation_path_count", lines)

    # Speedup varies modestly across the sweep (paths are capped long
    # before the budget in most regions); no configuration collapses.
    speedups = [rows[limit]["speedup"] for limit in PATH_LIMITS]
    assert max(speedups) / min(speedups) < 1.25


def compute_btr(lab):
    rows = {}
    for use_btr in (True, False):
        machine = MachineModel(name="8U", issue_width=8, use_btr=use_btr)
        speedups = []
        for bench in SWEEP_BENCHMARKS:
            program = lab.suite[bench]
            result = evaluate_program(
                program, treegion_scheme(), machine,
                ScheduleOptions(heuristic=GLOBAL_WEIGHT),
            )
            # Consistent baseline: same branch architecture.
            base_machine = MachineModel(name="1U", issue_width=1,
                                        use_btr=use_btr)
            from repro.evaluation import bb_scheme

            base = evaluate_program(program, bb_scheme(), base_machine,
                                    ScheduleOptions()).time
            speedups.append(base / result.time)
        rows[use_btr] = geometric_mean(speedups)
    return rows


def test_ablation_btr(benchmark, lab):
    rows = benchmark.pedantic(compute_btr, args=(lab,), rounds=1,
                              iterations=1)
    lines = [
        "Ablation: Playdoh PBR/BTR branch architecture (treegion, 8U)",
        f"with PBR ops:    speedup {rows[True]:.3f}",
        f"without PBR ops: speedup {rows[False]:.3f}",
    ]
    emit_table("ablation_btr", lines)
    # Both configurations are self-consistent (same ISA in numerator and
    # denominator), so speedups stay in a narrow band.
    assert 0.7 < rows[True] / rows[False] < 1.3
