"""Scheduler hot-path regression benchmark.

Times the paper's full 192-cell evaluation grid through the region-level
memo (:mod:`repro.schedule.memo`) in two passes —

* **cold**: a fresh :class:`RegionMemo`, so every tier-2 probe misses
  and the flat-array DDG/list-scheduler pipeline runs for every unique
  (region, machine, heuristic) while tier 1 shares prep/renaming across
  the heuristic sweep and DDGs across same-latency machines;
* **warm**: the same memo again, every region served from tier 2;

— verifies the two passes produce identical numbers, enforces the perf
targets, and writes ``BENCH_sched.json`` at the repo root so future PRs
can diff the trajectory:

* the cold pass must beat the pre-optimization direct-pipeline baseline
  (``BASELINE_SECONDS``, the ``uninstrumented_seconds`` committed in
  ``BENCH_obs.json`` *before* the flat-array rewrite, measured on the
  same runner class) by at least ``MIN_COLD_SPEEDUP`` — override with
  ``REPRO_SCHED_BENCH_MIN_SPEEDUP`` (e.g. ``0`` on noisy shared CI
  runners);
* the warm pass must beat the cold pass by at least
  ``MIN_WARM_SPEEDUP`` (the hit path is fingerprint + dict probe +
  counter replay, nothing else).

CI smoke runs shrink the grid via ``REPRO_SCHED_BENCH_BENCHMARKS``;
shrunken runs skip the baseline comparison (the committed baseline is
full-grid) but still enforce warm-vs-cold.  Regenerate the committed
snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/test_sched_snapshot.py -s
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.evaluation.engine import default_grid, evaluate_grid
from repro.schedule.memo import RegionMemo

from benchmarks.conftest import emit_table

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_sched.json"
OBS_FILE = REPO_ROOT / "BENCH_obs.json"

#: Full-grid wall time of the direct pipeline before the flat-array DDG
#: rewrite and the region memo (the last pre-optimization BENCH_obs
#: snapshot).  Pinned rather than read live: BENCH_obs now tracks the
#: *current* direct pipeline, which these same optimizations also sped
#: up, so the live number would silently shrink the target.
BASELINE_SECONDS = 18.159
BASELINE_GRID_CELLS = 192

#: Cold-grid floor vs the pinned pre-optimization baseline.
MIN_COLD_SPEEDUP = 3.0

#: Warm-grid floor vs the cold pass.
MIN_WARM_SPEEDUP = 2.0


def _grid():
    subset = os.environ.get("REPRO_SCHED_BENCH_BENCHMARKS")
    if subset:
        return default_grid(benchmarks=[
            name.strip() for name in subset.split(",") if name.strip()
        ])
    return default_grid()


def _direct_seconds(grid_cells: int):
    """The current committed direct-pipeline wall time, if comparable
    (informational — the acceptance floor uses ``BASELINE_SECONDS``)."""
    if not OBS_FILE.exists():
        return None
    try:
        snapshot = json.loads(OBS_FILE.read_text())
    except ValueError:
        return None
    if snapshot.get("grid_cells") != grid_cells:
        return None
    return snapshot.get("uninstrumented_seconds")


def test_sched_snapshot():
    grid = _grid()
    memo = RegionMemo()

    t0 = time.perf_counter()
    cold = evaluate_grid(grid, jobs=1, region_memo=memo)
    t_cold = time.perf_counter() - t0
    cold_stats = memo.stats()

    t0 = time.perf_counter()
    warm = evaluate_grid(grid, jobs=1, region_memo=memo)
    t_warm = time.perf_counter() - t0
    warm_stats = memo.stats()

    # Memoization must never change the answer.
    for a, b in zip(cold, warm):
        assert a.time == b.time
        assert a.code_expansion == b.code_expansion
        assert a.schedule_lengths == b.schedule_lengths

    # The warm pass must be pure cache service.
    assert warm_stats["misses"] == cold_stats["misses"], (
        "warm pass missed the memo: region fingerprints unstable"
    )

    min_cold = float(os.environ.get("REPRO_SCHED_BENCH_MIN_SPEEDUP",
                                    MIN_COLD_SPEEDUP))
    full_grid = len(grid) == BASELINE_GRID_CELLS
    cold_speedup = BASELINE_SECONDS / t_cold if full_grid else None
    if cold_speedup is not None:
        assert cold_speedup >= min_cold, (
            f"cold grid {t_cold:.2f}s is only {cold_speedup:.2f}x the "
            f"pre-optimization {BASELINE_SECONDS:.2f}s baseline; "
            f"floor {min_cold}"
        )

    warm_speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm grid {t_warm:.2f}s vs cold {t_cold:.2f}s: only "
        f"{warm_speedup:.2f}x; floor {MIN_WARM_SPEEDUP}"
    )

    snapshot = {
        "grid_cells": len(grid),
        "cold_seconds": round(t_cold, 3),
        "warm_seconds": round(t_warm, 3),
        "warm_speedup": round(warm_speedup, 2),
        "baseline_seconds": BASELINE_SECONDS if full_grid else None,
        "cold_speedup_vs_baseline": (
            round(cold_speedup, 2) if cold_speedup is not None else None
        ),
        "direct_seconds": _direct_seconds(len(grid)),
        "memo": {
            "cold_hits": cold_stats["hits"],
            "cold_misses": cold_stats["misses"],
            "warm_hits": warm_stats["hits"] - cold_stats["hits"],
            "entries": warm_stats["entries"],
            "bytes": warm_stats["bytes"],
        },
    }
    BENCH_FILE.write_text(json.dumps(snapshot, indent=2) + "\n")

    emit_table("sched_snapshot", [
        f"{'grid cells':32s} {len(grid):>12d}",
        f"{'cold':32s} {t_cold:>11.2f}s",
        f"{'warm':32s} {t_warm:>11.2f}s",
        f"{'warm speedup':32s} {warm_speedup:>11.2f}x",
        f"{'baseline':32s} "
        + (f"{BASELINE_SECONDS:>11.2f}s" if full_grid else f"{'n/a':>12s}"),
        f"{'cold vs baseline':32s} "
        + (f"{cold_speedup:>11.2f}x" if cold_speedup else f"{'n/a':>12s}"),
        f"{'tier-1 hits (cold)':32s} {cold_stats['hits']:>12d}",
        f"{'tier-2 entries':32s} {warm_stats['entries']:>12d}",
        f"{'memo bytes':32s} {warm_stats['bytes']:>12d}",
    ])
