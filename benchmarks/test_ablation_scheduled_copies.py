"""Ablation: scheduling the renaming repair copies for real.

The paper excludes renaming copies from its metric ("Copy Ops added due to
renaming were not used in computing speedup").  This ablation re-runs
treegion scheduling with the copies materialized as predicated ops that
compete for issue slots, quantifying exactly how generous the paper's
accounting is; it also reports the register-pressure cost renaming
implies (max simultaneously-live GPRs/predicates).
"""

from repro.machine import VLIW_4U
from repro.schedule import ScheduleOptions
from repro.schedule.stats import aggregate_pressure
from repro.evaluation import evaluate_program, treegion_scheme

from benchmarks.conftest import emit_table, geometric_mean

STUDY_BENCHMARKS = ["compress", "gcc", "li", "vortex"]


def compute_copies_ablation(lab):
    rows = {}
    for bench in STUDY_BENCHMARKS:
        base = lab.baseline(bench)
        program = lab.suite[bench]
        free = evaluate_program(
            program, treegion_scheme(), VLIW_4U,
            ScheduleOptions(heuristic="global_weight"),
        )
        charged = evaluate_program(
            program, treegion_scheme(), VLIW_4U,
            ScheduleOptions(heuristic="global_weight", schedule_copies=True),
        )
        pressure = aggregate_pressure(free.schedules, VLIW_4U)
        rows[bench] = {
            "free": base / free.time,
            "charged": base / charged.time,
            "copies": free.total_copies,
            "gpr": pressure.max_live_gpr,
            "pred": pressure.max_live_pred,
            "util": pressure.utilization,
        }
    return rows


def test_ablation_scheduled_copies(benchmark, lab):
    rows = benchmark.pedantic(compute_copies_ablation, args=(lab,),
                              rounds=1, iterations=1)

    lines = [
        "Ablation: renaming copies free (paper accounting) vs scheduled "
        "(treegion, global weight, 4U)",
        f"{'program':10s} {'free':>7s} {'charged':>8s} {'penalty':>8s} "
        f"{'copies':>7s} {'maxGPR':>7s} {'maxPred':>8s} {'util':>6s}",
    ]
    for bench in STUDY_BENCHMARKS:
        row = rows[bench]
        penalty = 100 * (1 - row["charged"] / row["free"])
        lines.append(
            f"{bench:10s} {row['free']:7.2f} {row['charged']:8.2f} "
            f"{penalty:7.1f}% {row['copies']:7d} {row['gpr']:7d} "
            f"{row['pred']:8d} {row['util']:6.2f}"
        )
    mean_free = geometric_mean(rows[b]["free"] for b in STUDY_BENCHMARKS)
    mean_charged = geometric_mean(
        rows[b]["charged"] for b in STUDY_BENCHMARKS
    )
    lines.append(
        f"{'geomean':10s} {mean_free:7.2f} {mean_charged:8.2f} "
        f"{100 * (1 - mean_charged / mean_free):7.1f}%"
    )
    emit_table("ablation_scheduled_copies", lines)

    for bench in STUDY_BENCHMARKS:
        row = rows[bench]
        # Charging the copies can only slow schedules down...
        assert row["charged"] <= row["free"] * 1.001, bench
        # ...but the paper's choice is defensible: the penalty is modest.
        assert row["charged"] >= row["free"] * 0.8, bench
        assert row["copies"] > 0, bench
