"""Table 3: code expansion of superblocks vs tail-duplicated treegions.

Paper values (factor by which code size increased):

    program    sb     tree(2.0)  tree(3.0)
    compress   1.26     1.34       1.62
    gcc        1.14     1.32       1.43
    go         1.21     1.33       1.40
    ijpeg      1.15     1.26       1.38
    li         1.20     1.26       1.31
    m88ksim    1.19     1.34       1.49
    perl       1.07     1.30       1.38
    vortex     1.17     1.37       1.45
    average    1.18     1.32       1.44

Shape: superblocks expand least; treegions expand more ("tail duplication
can occur along multiple paths within a treegion"), and the 3.0 limit
expands more than 2.0 — while all remain "moderate".
"""

from benchmarks.conftest import emit_table

PAPER_AVG = {"sb": 1.18, "tree2": 1.32, "tree3": 1.44}


def compute_table3(lab, benchmarks):
    rows = {}
    for bench in benchmarks:
        sb = lab.evaluate(bench, scheme_name="superblock", machine_name="4U",
                          heuristic="global_weight")
        t2 = lab.evaluate(bench, scheme_name="treegion-td", machine_name="4U",
                          heuristic="global_weight", td_limit=2.0)
        t3 = lab.evaluate(bench, scheme_name="treegion-td", machine_name="4U",
                          heuristic="global_weight", td_limit=3.0)
        rows[bench] = {
            "sb": sb.code_expansion,
            "tree2": t2.code_expansion,
            "tree3": t3.code_expansion,
        }
    return rows


def test_table3_code_expansion(benchmark, lab, benchmarks):
    rows = benchmark.pedantic(
        compute_table3, args=(lab, benchmarks), rounds=1, iterations=1
    )

    lines = [
        "Table 3: code expansion factors (measured; paper avg "
        f"sb={PAPER_AVG['sb']}, tree2.0={PAPER_AVG['tree2']}, "
        f"tree3.0={PAPER_AVG['tree3']})",
        f"{'program':10s} {'sb':>7s} {'tree2.0':>9s} {'tree3.0':>9s}",
    ]
    for bench in benchmarks:
        row = rows[bench]
        lines.append(
            f"{bench:10s} {row['sb']:7.2f} {row['tree2']:9.2f} "
            f"{row['tree3']:9.2f}"
        )
    avgs = {
        key: sum(rows[b][key] for b in benchmarks) / len(benchmarks)
        for key in ("sb", "tree2", "tree3")
    }
    lines.append(
        f"{'average':10s} {avgs['sb']:7.2f} {avgs['tree2']:9.2f} "
        f"{avgs['tree3']:9.2f}"
    )
    emit_table("table3_code_expansion", lines)

    for bench in benchmarks:
        row = rows[bench]
        # Ordering: superblocks expand least, higher treegion limits more.
        assert row["sb"] <= row["tree2"] * 1.02, bench
        assert row["tree2"] <= row["tree3"] * 1.001, bench
        # "Overall, the amount of code duplication is moderate".
        assert row["tree3"] <= 3.0, bench
    # Averages in the paper's band.
    assert 1.0 <= avgs["sb"] <= 1.35
    assert 1.15 <= avgs["tree2"] <= 1.75
    assert avgs["tree2"] < avgs["tree3"] <= 2.2
