"""Table 1: treegion statistics.

Paper values (SPECint95, treegion formation without tail duplication):

    program   avg#bb  max#bb  avg#instrs
    compress   2.43      8      17.63
    gcc        2.85    384      21.54
    go         2.75     89      20.95
    ijpeg      2.39     69      20.87
    li         2.56     44      18.29
    m88ksim    3.38    146      25.68
    perl       3.14    774      23.45
    vortex     3.30     39      33.53

Our synthetic stand-ins are scaled down (hundreds of blocks per program),
so max#bb is proportionally smaller; the averages must land in the paper's
band and treegions must clearly exceed basic blocks in ops.
"""

from repro.core import form_treegions
from repro.regions import partition_stats

from benchmarks.conftest import emit_table

PAPER_TABLE1 = {
    "compress": (2.43, 8, 17.63),
    "gcc": (2.85, 384, 21.54),
    "go": (2.75, 89, 20.95),
    "ijpeg": (2.39, 69, 20.87),
    "li": (2.56, 44, 18.29),
    "m88ksim": (3.38, 146, 25.68),
    "perl": (3.14, 774, 23.45),
    "vortex": (3.30, 39, 33.53),
}


def compute_table1(lab, benchmarks):
    rows = {}
    for bench in benchmarks:
        function = lab.suite[bench].entry_function
        stats = partition_stats([form_treegions(function.cfg)])
        rows[bench] = stats
    return rows


def test_table1_treegion_stats(benchmark, lab, benchmarks):
    rows = benchmark.pedantic(
        compute_table1, args=(lab, benchmarks), rounds=1, iterations=1
    )

    lines = [
        "Table 1: Treegion statistics (measured vs paper)",
        f"{'program':10s} {'avg#bb':>7s} {'max#bb':>7s} {'avg#ops':>8s}"
        f"   | {'paper avg':>9s} {'paper max':>9s} {'paper ops':>9s}",
    ]
    for bench in benchmarks:
        stats = rows[bench]
        paper = PAPER_TABLE1[bench]
        lines.append(
            f"{bench:10s} {stats.avg_blocks:7.2f} {stats.max_blocks:7d} "
            f"{stats.avg_ops:8.2f}   | {paper[0]:9.2f} {paper[1]:9d} "
            f"{paper[2]:9.2f}"
        )
    emit_table("table1_treegion_stats", lines)

    for bench in benchmarks:
        stats = rows[bench]
        # Shape bands around the paper's Table 1.
        assert 2.0 <= stats.avg_blocks <= 4.5, bench
        assert 15.0 <= stats.avg_ops <= 40.0, bench
        assert stats.max_blocks >= 5, bench
    # vortex has the biggest treegions in ops, as in the paper it is the
    # clear maximum of the avg-ops column.
    assert rows["vortex"].avg_ops == max(
        rows[b].avg_ops for b in benchmarks if b != "m88ksim"
    )
