"""Preconditioning study: classic optimizations before region scheduling.

Section 2: "The programs had classic optimizations and a profiling run
using training inputs applied to them" before region formation.  This
bench quantifies that preconditioning on the executable minic workloads:
op-count shrink from the classic pipeline (fold / propagate / CSE / DCE /
branch simplification / straightening) and its effect on scheduled
performance — optimized code both runs fewer ops and schedules at least
as fast.
"""

from repro.ir.clone import clone_program
from repro.interp import Interpreter, profile_program
from repro.machine import VLIW_4U
from repro.opt import optimize_program
from repro.schedule import ScheduleOptions
from repro.evaluation import treegion_scheme
from repro.vliw import simulate
from repro.workloads.minic_programs import (
    build_minic_program,
    minic_program_names,
)

from benchmarks.conftest import emit_table, geometric_mean


def compute_opt_study():
    rows = {}
    options = ScheduleOptions(heuristic="global_weight")
    for name in minic_program_names():
        raw, args = build_minic_program(name)
        expected = Interpreter(raw).run(args)

        optimized = clone_program(raw)
        stats = optimize_program(optimized)

        profile_program(raw, inputs=[args])
        profile_program(optimized, inputs=[args])

        result_raw, sim_raw = simulate(raw, treegion_scheme(), VLIW_4U,
                                       args, options)
        result_opt, sim_opt = simulate(optimized, treegion_scheme(),
                                       VLIW_4U, args, options)
        assert result_raw == result_opt == expected

        rows[name] = {
            "ops_before": stats.ops_before,
            "ops_after": stats.ops_after,
            "cycles_raw": sim_raw.cycles,
            "cycles_opt": sim_opt.cycles,
        }
    return rows


def test_classic_opts(benchmark):
    rows = benchmark.pedantic(compute_opt_study, rounds=1, iterations=1)

    lines = [
        "Classic optimizations before treegion scheduling (4U, minic "
        "workloads)",
        f"{'program':13s} {'ops':>9s} {'opt ops':>8s} {'cycles':>8s} "
        f"{'opt cycles':>11s} {'gain':>7s}",
    ]
    for name, row in rows.items():
        gain = 100 * (1 - row["cycles_opt"] / row["cycles_raw"])
        lines.append(
            f"{name:13s} {row['ops_before']:9d} {row['ops_after']:8d} "
            f"{row['cycles_raw']:8d} {row['cycles_opt']:11d} {gain:6.1f}%"
        )
    mean_gain = geometric_mean(
        row["cycles_raw"] / row["cycles_opt"] for row in rows.values()
    )
    lines.append(f"geomean cycle improvement: "
                 f"{100 * (mean_gain - 1):.1f}%")
    emit_table("classic_opts", lines)

    for name, row in rows.items():
        assert row["ops_after"] <= row["ops_before"], name
        # Optimization never slows the scheduled code down materially.
        assert row["cycles_opt"] <= row["cycles_raw"] * 1.05, name
    assert mean_gain >= 1.0
