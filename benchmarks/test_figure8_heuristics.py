"""Figure 8: the four treegion scheduling heuristics on 4U and 8U.

Paper findings reproduced here:

* **global weight** has the best overall performance (it beats dependence
  height by ~3% at 4U, ~1% at 8U in the paper);
* **exit count** is the weakest heuristic overall ("the results are
  mixed, and overall the dependence height heuristic provides 2-4% higher
  speedup"; it "performs very poorly on gcc and perl" — see also the
  pathological-shape bench);
* **weighted count** tracks global weight closely but never beats it
  overall (the vortex/linearized-treegion degradation).
"""

from repro.schedule.priorities import (
    DEP_HEIGHT,
    EXIT_COUNT,
    GLOBAL_WEIGHT,
    HEURISTICS,
    WEIGHTED_COUNT,
)

from benchmarks.conftest import emit_table, geometric_mean


def compute_figure8(lab, benchmarks):
    rows = {}
    for bench in benchmarks:
        rows[bench] = {}
        for machine in ("4U", "8U"):
            for heuristic in HEURISTICS:
                rows[bench][(machine, heuristic)] = lab.speedup(
                    bench, scheme_name="treegion", machine_name=machine,
                    heuristic=heuristic,
                )
    return rows


def test_figure8_heuristics(benchmark, lab, benchmarks):
    rows = benchmark.pedantic(
        compute_figure8, args=(lab, benchmarks), rounds=1, iterations=1
    )

    lines = ["Figure 8: treegion scheduling heuristics "
             "(speedup over 1-issue basic-block)"]
    for machine in ("4U", "8U"):
        lines.append(f"-- {machine} machine model --")
        lines.append(
            f"{'program':10s} " + " ".join(f"{h[:9]:>10s}" for h in HEURISTICS)
        )
        for bench in benchmarks:
            lines.append(
                f"{bench:10s} "
                + " ".join(f"{rows[bench][(machine, h)]:10.2f}"
                           for h in HEURISTICS)
            )
        means = {
            h: geometric_mean(rows[b][(machine, h)] for b in benchmarks)
            for h in HEURISTICS
        }
        lines.append(
            f"{'geomean':10s} "
            + " ".join(f"{means[h]:10.2f}" for h in HEURISTICS)
        )
    emit_table("figure8_heuristics", lines)

    for machine in ("4U", "8U"):
        means = {
            h: geometric_mean(rows[b][(machine, h)] for b in benchmarks)
            for h in HEURISTICS
        }
        # Global weight is the best heuristic overall.
        assert means[GLOBAL_WEIGHT] >= max(means.values()) * 0.999, machine
        # Exit count never beats dependence height overall.
        assert means[EXIT_COUNT] <= means[DEP_HEIGHT] * 1.001, machine
        # Weighted count tracks global weight but does not beat it.
        assert means[WEIGHTED_COUNT] <= means[GLOBAL_WEIGHT] * 1.001, machine
        assert means[WEIGHTED_COUNT] >= means[EXIT_COUNT], machine
