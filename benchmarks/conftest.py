"""Shared infrastructure for the table/figure benchmarks.

Every benchmark regenerates one table or figure of the paper over the
synthetic SPECint95 stand-in suite, prints it, and writes it to
``benchmarks/results/<name>.txt``.  Expensive pipeline runs are cached per
session (several figures share the same scheme evaluations).

Run with::

    pytest benchmarks/ --benchmark-only

(add ``-s`` to see the tables inline; they are always written to the
results directory).
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Tuple

import pytest

from repro.evaluation import (
    EvaluationResult,
    baseline_time,
    bb_scheme,
    evaluate_program,
    slr_scheme,
    superblock_scheme,
    treegion_scheme,
    treegion_td_scheme,
)
from repro.core.tail_duplication import TreegionLimits
from repro.machine import PAPER_MACHINES
from repro.schedule import ScheduleOptions
from repro.workloads.specint import BENCHMARK_NAMES, build_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_SCHEMES = {
    "bb": bb_scheme,
    "slr": slr_scheme,
    "treegion": treegion_scheme,
    "superblock": superblock_scheme,
}


class Lab:
    """Cached access to suite programs, baselines, and evaluations."""

    def __init__(self):
        self.suite = build_suite()
        self._baselines: Dict[str, float] = {}
        self._evals: Dict[Tuple, EvaluationResult] = {}

    # ------------------------------------------------------------------

    def baseline(self, bench: str) -> float:
        if bench not in self._baselines:
            self._baselines[bench] = baseline_time(self.suite[bench])
        return self._baselines[bench]

    def evaluate(
        self,
        bench: str,
        scheme_name: str,
        machine_name: str,
        heuristic: str = "dep_height",
        dominator_parallelism: bool = False,
        td_limit: Optional[float] = None,
    ) -> EvaluationResult:
        key = (bench, scheme_name, machine_name, heuristic,
               dominator_parallelism, td_limit)
        if key not in self._evals:
            if scheme_name == "treegion-td":
                limits = TreegionLimits(code_expansion=td_limit or 2.0)
                scheme = treegion_td_scheme(limits)
            else:
                scheme = _SCHEMES[scheme_name]()
            machine = PAPER_MACHINES[machine_name]
            options = ScheduleOptions(
                heuristic=heuristic,
                dominator_parallelism=dominator_parallelism,
            )
            self._evals[key] = evaluate_program(
                self.suite[bench], scheme, machine, options
            )
        return self._evals[key]

    def speedup(self, bench: str, **kwargs) -> float:
        result = self.evaluate(bench, **kwargs)
        return self.baseline(bench) / result.time


@pytest.fixture(scope="session")
def lab() -> Lab:
    return Lab()


@pytest.fixture(scope="session")
def benchmarks() -> list:
    return list(BENCHMARK_NAMES)


def emit_table(name: str, lines) -> str:
    """Print a table and persist it under benchmarks/results/."""
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print()
    print(text)
    return text


# Re-exported so benchmark modules keep importing it from conftest; the
# real implementation (with a defined empty-input result) lives in
# repro.util.stats.
from repro.util.stats import geometric_mean  # noqa: E402,F401
