"""Ablation: dominator parallelism on/off (Section 4).

"A primary drawback of tail duplication is the introduction of redundant
operations [...] In some cases the scheduler can take advantage of
dominator parallelism to eliminate redundant Ops from the schedule."

Measures, per benchmark, tail-duplicated treegion scheduling (limit 3.0,
global weight, 8U) with and without duplicate elimination: the number of
merged ops and the speedup delta.  Elimination must never hurt.
"""

from benchmarks.conftest import emit_table, geometric_mean

ABLATION_BENCHMARKS = ["compress", "gcc", "ijpeg", "li", "m88ksim", "vortex"]


def compute_ablation(lab):
    rows = {}
    for bench in ABLATION_BENCHMARKS:
        with_dp = lab.evaluate(
            bench, scheme_name="treegion-td", machine_name="8U",
            heuristic="global_weight", dominator_parallelism=True,
            td_limit=3.0,
        )
        without = lab.evaluate(
            bench, scheme_name="treegion-td", machine_name="8U",
            heuristic="global_weight", dominator_parallelism=False,
            td_limit=3.0,
        )
        base = lab.baseline(bench)
        rows[bench] = {
            "with": base / with_dp.time,
            "without": base / without.time,
            "merged": with_dp.total_merged,
        }
    return rows


def test_ablation_dominator_parallelism(benchmark, lab):
    rows = benchmark.pedantic(compute_ablation, args=(lab,), rounds=1,
                              iterations=1)

    lines = [
        "Ablation: dominator parallelism (treegion-td 3.0, global weight, 8U)",
        f"{'program':10s} {'with DP':>8s} {'without':>8s} {'merged ops':>11s}",
    ]
    for bench in ABLATION_BENCHMARKS:
        row = rows[bench]
        lines.append(
            f"{bench:10s} {row['with']:8.2f} {row['without']:8.2f} "
            f"{row['merged']:11d}"
        )
    mean_with = geometric_mean(rows[b]["with"] for b in ABLATION_BENCHMARKS)
    mean_without = geometric_mean(
        rows[b]["without"] for b in ABLATION_BENCHMARKS
    )
    lines.append(f"{'geomean':10s} {mean_with:8.2f} {mean_without:8.2f}")
    emit_table("ablation_dominator_parallelism", lines)

    total_merged = sum(rows[b]["merged"] for b in ABLATION_BENCHMARKS)
    assert total_merged > 0, "tail duplication should create mergeable ops"
    for bench in ABLATION_BENCHMARKS:
        # Elimination never hurts (it frees slots, nothing else).
        assert rows[bench]["with"] >= rows[bench]["without"] * 0.999, bench
    assert mean_with >= mean_without
