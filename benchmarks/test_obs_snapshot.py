"""Observability regression benchmark.

Runs the paper's evaluation grid through the engine in two
configurations —

* **uninstrumented**: ``NULL_TIMER`` / ``NULL_METRICS`` / ``NULL_TRACER``
  (the default for every caller that does not opt in), and
* **instrumented**: a real :class:`StageTimer`, :class:`MetricsRegistry`,
  and :class:`Tracer` collecting the full span tree;

— verifies both produce identical numbers, bounds the instrumentation
overhead, and writes ``BENCH_obs.json`` at the repo root (wall times,
overhead ratio, per-stage timings, headline pipeline counters, histogram
summaries) so future PRs can diff the perf trajectory.  The Chrome
trace from the instrumented run is saved to
``benchmarks/results/obs_trace.json`` as a viewable artifact.

Measurement discipline: the grid runs with ``region_memo=False`` — this
benchmark measures the *direct pipeline's* instrumentation overhead, and
with the memo on the second configuration would be served from cache and
time the cache instead (the memoized path has its own benchmark,
``test_sched_snapshot.py``).  Each configuration is timed best-of-N
(minimum of ``BEST_OF`` runs), with the two configurations
*interleaved* so neither gets all the late, process-warmed iterations:
the minimum is the standard noise floor for CPU-bound benchmarks, and
without both disciplines warm-up asymmetry used to push the overhead
ratio *below* 1.0.

CI smoke runs shrink the grid via ``REPRO_OBS_BENCH_BENCHMARKS`` (a
comma-separated benchmark subset, e.g. ``compress``); the snapshot
records the grid size so shrunken runs are not mistaken for full ones.
Regenerate the committed snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_snapshot.py -s
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.evaluation.engine import default_grid, evaluate_grid
from repro.obs import MetricsRegistry, Tracer
from repro.util.timing import StageTimer

from benchmarks.conftest import RESULTS_DIR, emit_table

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_obs.json"
TRACE_ARTIFACT = RESULTS_DIR / "obs_trace.json"

#: Runs per configuration; the recorded wall time is the minimum.
BEST_OF = 3

#: Headline counters recorded in the snapshot (a stable subset, so the
#: JSON diffs cleanly when unrelated counters are added later).
HEADLINE_COUNTERS = (
    "engine.cells",
    "formation.regions",
    "formation.blocks",
    "tail_dup.blocks",
    "tail_dup.ops",
    "prep.pand_merges",
    "rename.registers_minted",
    "rename.exit_copies",
    "ddg.nodes",
    "ddg.edges",
    "schedule.regions",
    "schedule.cycles",
    "schedule.speculated",
    "schedule.merged",
)

#: Generous ceiling on instrumented/uninstrumented wall time: the
#: instrumentation points are per-region, never per-op, so the real
#: ratio sits near 1.0; anything past this bound means a hot path grew
#: an instrumentation call it should not have.
MAX_OVERHEAD_RATIO = 1.5


def _grid():
    subset = os.environ.get("REPRO_OBS_BENCH_BENCHMARKS")
    if subset:
        return default_grid(benchmarks=[
            name.strip() for name in subset.split(",") if name.strip()
        ])
    return default_grid()


def _timed(make_run):
    """Time one run; ``make_run`` returns (payload, result-rows)."""
    t0 = time.perf_counter()
    payload, rows = make_run()
    return time.perf_counter() - t0, payload, rows


def test_obs_snapshot():
    grid = _grid()

    def plain_run():
        return None, evaluate_grid(grid, jobs=1, region_memo=False)

    def instrumented_run():
        timer = StageTimer()
        metrics = MetricsRegistry()
        tracer = Tracer()
        rows = evaluate_grid(grid, jobs=1, timer=timer, metrics=metrics,
                             tracer=tracer, region_memo=False)
        return (timer, metrics, tracer), rows

    best_plain = best_instr = None
    for _ in range(BEST_OF):
        run = _timed(plain_run)
        if best_plain is None or run[0] < best_plain[0]:
            best_plain = run
        run = _timed(instrumented_run)
        if best_instr is None or run[0] < best_instr[0]:
            best_instr = run
    t_plain, _, plain = best_plain
    t_instr, (timer, metrics, tracer), instrumented = best_instr

    # Observability must never change the answer.
    for a, b in zip(plain, instrumented):
        assert a.time == b.time
        assert a.code_expansion == b.code_expansion
        assert a.schedule_lengths == b.schedule_lengths

    assert metrics.counters["engine.cells"] == len(grid)
    spans = tracer.finished_spans()
    assert spans and all(s.end is not None for s in spans)

    overhead = t_instr / t_plain if t_plain > 0 else 1.0
    assert overhead < MAX_OVERHEAD_RATIO, (
        f"instrumented grid run ({t_instr:.2f}s) is {overhead:.2f}x the "
        f"uninstrumented run ({t_plain:.2f}s); bound {MAX_OVERHEAD_RATIO}"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    tracer.write_chrome(str(TRACE_ARTIFACT))

    snapshot = {
        "grid_cells": len(grid),
        "best_of": BEST_OF,
        "uninstrumented_seconds": round(t_plain, 3),
        "instrumented_seconds": round(t_instr, 3),
        "overhead_ratio": round(overhead, 3),
        "span_count": len(spans),
        "stage_seconds": {
            name: round(seconds, 3)
            for name, seconds in sorted(timer.totals.items())
        },
        "stage_counts": dict(sorted(timer.counts.items())),
        "counters": {
            name: metrics.counters[name]
            for name in HEADLINE_COUNTERS if name in metrics.counters
        },
        "histograms": {
            name: metrics.histograms[name].as_dict()
            for name in sorted(metrics.histograms)
        },
    }
    BENCH_FILE.write_text(json.dumps(snapshot, indent=2) + "\n")

    counter_lines = [
        f"{name:32s} {metrics.counters[name]:>12d}"
        for name in HEADLINE_COUNTERS if name in metrics.counters
    ]
    emit_table("obs_snapshot", [
        f"{'grid cells':32s} {len(grid):>12d}",
        f"{'uninstrumented':32s} {t_plain:>11.2f}s",
        f"{'instrumented':32s} {t_instr:>11.2f}s",
        f"{'overhead':32s} {overhead:>11.2f}x",
        f"{'spans':32s} {len(spans):>12d}",
        "",
    ] + counter_lines)
