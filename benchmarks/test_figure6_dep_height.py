"""Figure 6: dependence-height treegion scheduling vs BB and SLR.

The paper reports, for 4U and 8U machines (speedups over basic-block
scheduling on a 1-issue machine): treegion scheduling with the dependence
height heuristic exceeds basic-block scheduling by 48% (4U) / 35% (8U) and
SLR scheduling by 8% / 11%, with one exception (4U ijpeg, whose biased
treegions favour SLRs).

Shapes reproduced here: treegions beat basic blocks everywhere; treegions
beat or match SLRs on the wide machine.  Known deviation (documented in
EXPERIMENTS.md): on our substrate the 4-issue machine saturates inside the
hottest multi-path treegions, so dependence-height treegions trail SLRs at
4U — the paper's own ijpeg/biased-treegion caveat, magnified.  The
global-weight heuristic (Figure 8/13 benches) restores the treegion win on
both machines.
"""

from benchmarks.conftest import emit_table, geometric_mean


def compute_figure6(lab, benchmarks):
    rows = {}
    for bench in benchmarks:
        rows[bench] = {
            "bb4": lab.speedup(bench, scheme_name="bb", machine_name="4U"),
            "slr4": lab.speedup(bench, scheme_name="slr", machine_name="4U"),
            "tree4": lab.speedup(bench, scheme_name="treegion",
                                 machine_name="4U"),
            "bb8": lab.speedup(bench, scheme_name="bb", machine_name="8U"),
            "slr8": lab.speedup(bench, scheme_name="slr", machine_name="8U"),
            "tree8": lab.speedup(bench, scheme_name="treegion",
                                 machine_name="8U"),
        }
    return rows


def test_figure6_dep_height(benchmark, lab, benchmarks):
    rows = benchmark.pedantic(
        compute_figure6, args=(lab, benchmarks), rounds=1, iterations=1
    )

    columns = ["bb4", "slr4", "tree4", "bb8", "slr8", "tree8"]
    lines = [
        "Figure 6: speedup over 1-issue basic-block scheduling "
        "(dependence-height heuristic)",
        f"{'program':10s} " + " ".join(f"{c:>7s}" for c in columns),
    ]
    for bench in benchmarks:
        lines.append(
            f"{bench:10s} "
            + " ".join(f"{rows[bench][c]:7.2f}" for c in columns)
        )
    means = {c: geometric_mean(rows[b][c] for b in benchmarks)
             for c in columns}
    lines.append(
        f"{'geomean':10s} " + " ".join(f"{means[c]:7.2f}" for c in columns)
    )
    emit_table("figure6_dep_height", lines)

    for bench in benchmarks:
        row = rows[bench]
        # Treegions always beat basic blocks at equal width.
        assert row["tree4"] > row["bb4"] * 0.95, bench
        assert row["tree8"] > row["bb8"], bench
        # Wider machine never hurts treegions.
        assert row["tree8"] >= row["tree4"] * 0.98, bench
    # On the 8-issue machine treegions beat or match SLRs on average
    # (the paper's +11%; our substrate gives a smaller but positive edge).
    assert means["tree8"] >= means["slr8"] * 0.99
    # Everything beats the 1-issue baseline.
    assert all(means[c] > 1.3 for c in columns)
