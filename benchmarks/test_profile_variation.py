"""Future-work study: heuristic robustness under profile variation.

Section 6: "we would like to investigate the performance of treegion
schedules across different sets of inputs, to see the effects of profile
variations using the various heuristics"; Section 3 hypothesizes that the
dependence-height heuristic "is useful when profile information is
unavailable or unreliable".

Method: schedule each benchmark's treegions under its training profile;
perturb the profile (log-normal branch-probability noise + occasional
branch flips, flow re-solved exactly); re-price the *fixed* schedules
under the perturbed profile and compare with an oracle rescheduled for it.
``degradation = mean T_test(fixed) / mean T_test(oracle)``; 1.0 = robust.
"""

from repro.machine import VLIW_4U
from repro.schedule.priorities import DEP_HEIGHT, HEURISTICS
from repro.evaluation import treegion_scheme
from repro.evaluation.variation import variation_study

from benchmarks.conftest import emit_table

STUDY_BENCHMARKS = ["compress", "ijpeg", "li", "vortex"]
SEEDS = [11, 23, 47]


def compute_variation(lab):
    rows = {}
    for bench in STUDY_BENCHMARKS:
        rows[bench] = variation_study(
            lab.suite[bench], treegion_scheme, VLIW_4U,
            heuristics=list(HEURISTICS), seeds=SEEDS, magnitude=0.6,
        )
    return rows


def test_profile_variation(benchmark, lab):
    rows = benchmark.pedantic(compute_variation, args=(lab,), rounds=1,
                              iterations=1)

    lines = [
        "Profile variation study (treegions, 4U; degradation = fixed "
        "schedule vs reschedule-for-test-profile oracle; 1.0 = robust)",
        f"{'program':10s} " + " ".join(f"{h[:9]:>10s}" for h in HEURISTICS),
    ]
    for bench in STUDY_BENCHMARKS:
        lines.append(
            f"{bench:10s} "
            + " ".join(f"{rows[bench][h]['degradation']:10.3f}"
                       for h in HEURISTICS)
        )
    means = {
        h: sum(rows[b][h]["degradation"] for b in STUDY_BENCHMARKS)
        / len(STUDY_BENCHMARKS)
        for h in HEURISTICS
    }
    lines.append(
        f"{'mean':10s} " + " ".join(f"{means[h]:10.3f}" for h in HEURISTICS)
    )
    emit_table("profile_variation", lines)

    # Dependence height ignores profiles entirely: perfectly robust.
    assert means[DEP_HEIGHT] == 1.0
    # Profile-guided heuristics pay a bounded robustness tax.
    for heuristic in HEURISTICS:
        assert 0.999 <= means[heuristic] < 1.4, heuristic
    # No profile-guided heuristic is MORE robust than the profile-free one.
    assert all(means[h] >= means[DEP_HEIGHT] - 1e-9 for h in HEURISTICS)
