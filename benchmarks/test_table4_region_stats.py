"""Table 4: superblock and tail-duplicated treegion region statistics.

Paper values (region count, avg #bb, avg #ops per region):

    program     #sb   #tree2.0   sb avg#bb  tree avg#bb  sb avg#ops  tree avg#ops
    compress     19       87       5.26        5.20         31.0        35.6
    gcc        3471    15186       5.58        6.15         32.0        41.1
    go         1644     3280       3.75        5.61         24.6        39.2
    ijpeg       347     1575       3.96        4.80         26.0        37.4
    li          180     1053       4.37        4.58         23.7        30.9
    m88ksim     129     1483       5.84        6.92         72.0        48.9
    perl        144     3527       6.66        6.20         38.7        43.0
    vortex      184     1175       9.05        7.72         74.9        72.1

Shapes: treegions-with-tail-duplication are more numerous (they cover the
whole CFG; superblock counts exclude trivial single-block regions) and for
most programs contain at least as many ops per region as superblocks —
"treegions consider multiple paths".
"""

from repro.regions import partition_stats

from benchmarks.conftest import emit_table


def compute_table4(lab, benchmarks):
    rows = {}
    for bench in benchmarks:
        sb = lab.evaluate(bench, scheme_name="superblock", machine_name="4U",
                          heuristic="global_weight")
        t2 = lab.evaluate(bench, scheme_name="treegion-td", machine_name="4U",
                          heuristic="global_weight", td_limit=2.0)
        # The paper counts formed superblocks (multi-block traces); the
        # treegion column covers every region.
        rows[bench] = {
            "sb": partition_stats(sb.partitions, multi_block_only=True),
            "tree": partition_stats(t2.partitions),
        }
    return rows


def test_table4_region_stats(benchmark, lab, benchmarks):
    rows = benchmark.pedantic(
        compute_table4, args=(lab, benchmarks), rounds=1, iterations=1
    )

    lines = [
        "Table 4: superblock vs treegion(2.0) region statistics",
        f"{'program':10s} {'#sb':>6s} {'#tree':>6s} {'sb#bb':>7s} "
        f"{'tr#bb':>7s} {'sb#ops':>8s} {'tr#ops':>8s}",
    ]
    for bench in benchmarks:
        sb, tree = rows[bench]["sb"], rows[bench]["tree"]
        lines.append(
            f"{bench:10s} {sb.region_count:6d} {tree.region_count:6d} "
            f"{sb.avg_blocks:7.2f} {tree.avg_blocks:7.2f} "
            f"{sb.avg_ops:8.2f} {tree.avg_ops:8.2f}"
        )
    emit_table("table4_region_stats", lines)

    more_ops = 0
    for bench in benchmarks:
        sb, tree = rows[bench]["sb"], rows[bench]["tree"]
        assert sb.region_count > 0 and tree.region_count > 0, bench
        # Our stand-ins are single functions, so absolute region counts
        # are thousands of times smaller than SPECint95's; they must still
        # be of comparable magnitude between schemes.
        assert tree.region_count >= 0.5 * sb.region_count, bench
        assert sb.avg_blocks >= 2.0, bench  # real traces formed
        # Treegions cover more blocks per region than superblock traces.
        assert tree.avg_blocks >= sb.avg_blocks, bench
        if tree.avg_ops >= sb.avg_ops:
            more_ops += 1
    # "For most of the programs, treegions contain more basic blocks and
    # Ops than superblocks" — most, not all (m88ksim/vortex flip in the
    # paper too).
    assert more_ops >= len(benchmarks) // 2
