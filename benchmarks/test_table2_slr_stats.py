"""Table 2: simple linear region (SLR) statistics.

Paper values:

    program   avg#bb  max#bb  avg#ops
    compress   1.30      3      9.43
    gcc        1.26     54      8.98
    go         1.20     22      9.16
    ijpeg      1.32     18     11.58
    li         1.44      7     10.25
    m88ksim    1.34      9     10.19
    perl       1.27     24      9.29
    vortex     1.25      8     12.71

The key claims to reproduce: SLRs hold 1-2 blocks and ~9-13 ops — far
fewer blocks *and* ops than treegions over the same programs (Table 1 vs
Table 2 is the paper's motivation for non-linear regions).
"""

from repro.core import form_treegions
from repro.regions import form_slrs, partition_stats

from benchmarks.conftest import emit_table

PAPER_TABLE2 = {
    "compress": (1.30, 3, 9.43),
    "gcc": (1.26, 54, 8.98),
    "go": (1.20, 22, 9.16),
    "ijpeg": (1.32, 18, 11.58),
    "li": (1.44, 7, 10.25),
    "m88ksim": (1.34, 9, 10.19),
    "perl": (1.27, 24, 9.29),
    "vortex": (1.25, 8, 12.71),
}


def compute_table2(lab, benchmarks):
    rows = {}
    for bench in benchmarks:
        function = lab.suite[bench].entry_function
        slr = partition_stats([form_slrs(function.cfg)])
        tree = partition_stats([form_treegions(function.cfg)])
        rows[bench] = (slr, tree)
    return rows


def test_table2_slr_stats(benchmark, lab, benchmarks):
    rows = benchmark.pedantic(
        compute_table2, args=(lab, benchmarks), rounds=1, iterations=1
    )

    lines = [
        "Table 2: SLR statistics (measured vs paper)",
        f"{'program':10s} {'avg#bb':>7s} {'max#bb':>7s} {'avg#ops':>8s}"
        f"   | {'paper avg':>9s} {'paper max':>9s} {'paper ops':>9s}",
    ]
    for bench in benchmarks:
        slr, _tree = rows[bench]
        paper = PAPER_TABLE2[bench]
        lines.append(
            f"{bench:10s} {slr.avg_blocks:7.2f} {slr.max_blocks:7d} "
            f"{slr.avg_ops:8.2f}   | {paper[0]:9.2f} {paper[1]:9d} "
            f"{paper[2]:9.2f}"
        )
    emit_table("table2_slr_stats", lines)

    for bench in benchmarks:
        slr, tree = rows[bench]
        assert 1.0 <= slr.avg_blocks <= 2.2, bench
        assert 5.0 <= slr.avg_ops <= 20.0, bench
        # The motivating comparison: treegions give the scheduler more
        # blocks and more ops than SLRs, per benchmark.
        assert tree.avg_blocks > slr.avg_blocks, bench
        assert tree.avg_ops > slr.avg_ops, bench
        assert tree.max_blocks >= slr.max_blocks, bench
