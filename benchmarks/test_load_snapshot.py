"""Fleet load benchmark: a many-client soak through the TCP front-end.

Drives the paper's evaluation grid through a sharded
:class:`repro.serve.CompileFleet` behind the asyncio front-end in four
phases —

* **direct**: the reference :func:`evaluate_grid` pass;
* **cold soak with chaos**: a small client pool computes every cell
  once through TCP (populating the shard stores and the hot tier);
  one third of the way in, shard 0 is killed mid-batch — the
  supervisor restarts it and retries its in-flight keys, and the soak
  must drop nothing.  The kill lands here, while requests are
  genuinely in flight on shards, because once the hot tier is warm a
  shard kill is invisible;
* **warm soak**: the headline phase — ``REPRO_LOAD_BENCH_CLIENTS``
  concurrent connections (default 1000), start staggered across a ramp
  window, pushing ``REPRO_LOAD_BENCH_REQUESTS`` warm requests.

— and asserts the fleet contract end to end: every payload that came
over the wire is byte-identical to the direct pipeline's result, the
chaos phase drops zero requests, and the warm-hit p99 stays within 2x
of the local-store warm figure recorded in ``BENCH_serve.json``
(0.044s), i.e. a fleet client pays at most 2x the in-process store
pass for a warm answer even with a thousand peers connected.

The cold/chaos phase additionally runs under distributed tracing
(DESIGN.md §14): every process exports spans, and the merged
Perfetto timeline — client roots fanning into frontend/shard/worker
hops, restart-annotated where the chaos kill landed — is written to
``benchmarks/results/fleet_trace.json`` (the CI artifact).  Tracing is
switched off before the warm phase so the headline p99 measures the
serving path, not the exporter.  The warm phase's percentiles are
reported both ways (exact sample lists and obs histograms) and the
snapshot asserts the two agree within the power-of-two bucket bound
(see ``tests/test_soak_agreement.py``).

Results land in ``BENCH_load.json`` at the repo root.  CI smoke runs
shrink the scale via environment knobs::

    REPRO_LOAD_BENCH_BENCHMARKS=compress \
    REPRO_LOAD_BENCH_CLIENTS=50 \
    PYTHONPATH=src python -m pytest benchmarks/test_load_snapshot.py -s

Regenerate the committed snapshot by running with no knobs set.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.evaluation.engine import default_grid, evaluate_grid
from repro.obs import MetricsRegistry, merge_traces
from repro.serve import CompileFleet, result_to_payload
from repro.serve.frontend import FrontendServer
from repro.serve.soak import run_soak

from benchmarks.conftest import emit_table

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_load.json"
SERVE_BENCH_FILE = REPO_ROOT / "BENCH_serve.json"
TRACE_FILE = REPO_ROOT / "benchmarks" / "results" / "fleet_trace.json"

#: Fallback local-store warm figure when BENCH_serve.json is absent.
DEFAULT_WARM_FIGURE = 0.044

#: The acceptance bar: a warm fleet hit may cost at most this multiple
#: of the in-process warm-store pass.
WARM_P99_FACTOR = 2.0


def _env_int(name, default):
    value = os.environ.get(name)
    return default if not value else int(value)


def _grid():
    subset = os.environ.get("REPRO_LOAD_BENCH_BENCHMARKS")
    if subset:
        return default_grid(benchmarks=[
            name.strip() for name in subset.split(",") if name.strip()
        ])
    return default_grid()


def _warm_p99_bound():
    override = os.environ.get("REPRO_LOAD_BENCH_MAX_WARM_P99")
    if override:
        return float(override)
    figure = DEFAULT_WARM_FIGURE
    if SERVE_BENCH_FILE.exists():
        recorded = json.loads(SERVE_BENCH_FILE.read_text()).get(
            "service_warm_seconds")
        if recorded:
            figure = float(recorded)
    return WARM_P99_FACTOR * figure


def _check_payloads(report, direct, cells):
    """Every wire payload byte-identical to the direct pipeline."""
    for index, payload in report.payloads.items():
        expected = result_to_payload(
            payload["key"], direct[index % len(cells)])
        assert payload == expected, f"request {index} diverged"


def test_load_snapshot(tmp_path):
    cells = _grid()
    clients = _env_int("REPRO_LOAD_BENCH_CLIENTS", 1000)
    requests = _env_int("REPRO_LOAD_BENCH_REQUESTS", 2 * clients)
    shards = max(2, _env_int("REPRO_LOAD_BENCH_SHARDS", 2))
    # Stagger connection setup so the soak measures the fleet, not the
    # accept queue of one CPU swallowing a thousand simultaneous dials.
    ramp = clients / 100.0
    warm_p99_bound = _warm_p99_bound()

    t0 = time.perf_counter()
    direct = evaluate_grid(cells, jobs=1)
    t_direct = time.perf_counter() - t0

    registry = MetricsRegistry()
    trace_dir = tmp_path / "traces"
    fleet = CompileFleet(shards=shards, jobs=1,
                         cache_dir=str(tmp_path / "cache"),
                         metrics=registry, trace_dir=str(trace_dir))
    server = FrontendServer(fleet, "tcp://127.0.0.1:0", metrics=registry,
                            trace_dir=str(trace_dir))
    endpoint = server.start()
    try:
        # Cold soak with a shard kill mid-batch.  The supervisor must
        # restart the shard and retry its keys; nothing may drop.  The
        # whole phase runs under distributed tracing, so the merged
        # timeline shows the kill and the retried hops.
        killed = []

        def chaos(index):
            if index == len(cells) // 3 and not killed:
                killed.append(index)
                fleet.kill_shard(0, timeout=1.0)

        t0 = time.perf_counter()
        cold = run_soak(endpoint, cells, clients=8,
                        on_request=chaos, metrics=registry,
                        trace_dir=str(trace_dir))
        t_cold = time.perf_counter() - t0
        assert killed, "the chaos hook never fired"
        assert cold.dropped == 0 and not cold.errors, (
            f"shard kill dropped {cold.dropped} request(s): "
            f"{cold.errors[:3]}"
        )
        _check_payloads(cold, direct, cells)

        # Tracing off for the headline phase: the warm p99 measures
        # the serving path, not the span exporter.
        fleet.dtracer.set_enabled(False)
        server.frontend.dtracer.set_enabled(False)

        t0 = time.perf_counter()
        warm = run_soak(endpoint, cells, clients=clients,
                        requests=requests, ramp_seconds=ramp,
                        metrics=registry)
        t_warm = time.perf_counter() - t0
        assert warm.dropped == 0 and not warm.errors
        _check_payloads(warm, direct, cells)
        # Every request in the warm phase was served from a cache tier.
        assert set(warm.as_dict()["sources"]) <= {"hot", "store"}

        warm_p99 = warm.as_dict()["warm_latency"]["p99"]
        assert warm_p99 <= warm_p99_bound, (
            f"warm-hit p99 {warm_p99:.4f}s exceeds the "
            f"{warm_p99_bound:.4f}s bound "
            f"({WARM_P99_FACTOR}x the local-store warm figure)"
        )
        health = fleet.health()
    finally:
        server.stop()
        fleet.close(drain=False)

    counters = registry.snapshot()["counters"]
    assert counters.get("fleet.shard_kills") == 1
    assert health["shards"]["0"]["generation"] >= 1

    # Merge the cold phase's per-process span files into the Perfetto
    # artifact and sanity-check the cross-process shape.
    merged = merge_traces(str(trace_dir))
    assert merged.services() == ["client", "fleet", "frontend", "worker"]
    assert merged.find(name="shard.compile",
                       annotation="supervisor.restart"), \
        "the chaos kill left no restart-annotated dispatch span"
    chains = 0
    for trace_id in merged.trace_ids():
        for root in merged.roots(trace_id):
            if root.name != "client.compile":
                continue
            for frontend_span in merged.children(root):
                if any(hop.name in ("shard.compile", "fleet.hot")
                       for hop in merged.children(frontend_span)):
                    chains += 1
    assert chains >= len(cells), (
        f"only {chains} client->frontend->fleet chains for "
        f"{len(cells)} cells")
    TRACE_FILE.parent.mkdir(parents=True, exist_ok=True)
    merged.write_chrome(str(TRACE_FILE))

    warm_summary = warm.as_dict()
    # The two percentile views (exact sample list vs power-of-two
    # histogram) must agree within the bucket bound for every phase
    # split — the soak-agreement contract, held on real fleet traffic.
    for split, exact_key in (("all", "latency"), ("warm", "warm_latency"),
                             ("cold", "cold_latency")):
        hist = warm_summary["latency_hist_us"][split]
        exact = warm_summary[exact_key]
        if not exact["count"]:
            continue
        for q in (50, 95, 99):
            exact_us = exact[f"p{q}"] * 1e6
            estimate = hist[f"p{q}"]
            assert exact_us - 1 <= estimate <= 2 * exact_us + 1, (
                f"{split} p{q}: histogram {estimate}µs disagrees with "
                f"exact {exact_us:.0f}µs beyond the bucket bound")

    snapshot = {
        "grid_cells": len(cells),
        "shards": shards,
        "clients": clients,
        "requests": requests,
        "transport": "tcp",
        "direct_seconds": round(t_direct, 3),
        "cold_soak_seconds": round(t_cold, 3),
        "warm_soak_seconds": round(t_warm, 3),
        "ramp_seconds": round(ramp, 3),
        "sustained_qps": warm_summary["qps"],
        "latency": warm_summary["latency"],
        "warm_latency": warm_summary["warm_latency"],
        "latency_hist_us": warm_summary["latency_hist_us"],
        "warm_p99_bound_seconds": round(warm_p99_bound, 4),
        "sources": warm_summary["sources"],
        "identical_to_direct": True,
        "trace": {
            "file": str(TRACE_FILE.relative_to(REPO_ROOT)),
            "spans": len(merged),
            "traces": len(merged.trace_ids()),
            "services": merged.services(),
        },
        "chaos": {
            "phase": "cold_soak",
            "dropped_on_shard_kill": cold.dropped,
            "shard_kills": counters.get("fleet.shard_kills", 0),
            "shard_restarts": counters.get("fleet.shard_restarts", 0),
            "shard_retries": counters.get("fleet.shard_retries", 0),
        },
    }
    BENCH_FILE.write_text(json.dumps(snapshot, indent=2) + "\n")

    emit_table("load_snapshot", [
        f"{'grid cells':32s} {len(cells):>12d}",
        f"{'shards':32s} {shards:>12d}",
        f"{'clients':32s} {clients:>12d}",
        f"{'warm requests':32s} {requests:>12d}",
        f"{'direct':32s} {t_direct:>11.2f}s",
        f"{'cold soak':32s} {t_cold:>11.2f}s",
        f"{'warm soak':32s} {t_warm:>11.2f}s",
        f"{'sustained qps':32s} {warm_summary['qps']:>12.1f}",
        f"{'warm p50':32s} {warm_summary['warm_latency']['p50']:>11.4f}s",
        f"{'warm p99':32s} {warm_summary['warm_latency']['p99']:>11.4f}s",
        f"{'warm p99 bound':32s} {warm_p99_bound:>11.4f}s",
        f"{'dropped on shard kill':32s} {cold.dropped:>12d}",
    ])
