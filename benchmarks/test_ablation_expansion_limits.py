"""Ablation: sweeping the treegion code-expansion limit.

The paper evaluates limits 2.0 and 3.0; this sweep fills in the curve from
1.0 (no duplication — plain treegions) to 4.0, reporting realized code
expansion and speedup (global weight, dominator parallelism, 8U).

Expected shape: speedup is non-decreasing then saturating in the limit;
realized expansion grows monotonically and stays below the limit.
"""

from benchmarks.conftest import emit_table, geometric_mean

SWEEP_BENCHMARKS = ["compress", "gcc", "ijpeg", "li"]
LIMITS = (1.0, 1.5, 2.0, 3.0, 4.0)


def compute_sweep(lab):
    rows = {}
    for limit in LIMITS:
        speedups = []
        expansions = []
        for bench in SWEEP_BENCHMARKS:
            result = lab.evaluate(
                bench, scheme_name="treegion-td", machine_name="8U",
                heuristic="global_weight", dominator_parallelism=True,
                td_limit=limit,
            )
            speedups.append(lab.baseline(bench) / result.time)
            expansions.append(result.code_expansion)
        rows[limit] = {
            "speedup": geometric_mean(speedups),
            "expansion": sum(expansions) / len(expansions),
        }
    return rows


def test_ablation_expansion_limits(benchmark, lab):
    rows = benchmark.pedantic(compute_sweep, args=(lab,), rounds=1,
                              iterations=1)

    lines = [
        "Ablation: code-expansion limit sweep "
        "(treegion-td, global weight, DP, 8U; geomean of "
        + ", ".join(SWEEP_BENCHMARKS) + ")",
        f"{'limit':>6s} {'speedup':>8s} {'realized expansion':>19s}",
    ]
    for limit in LIMITS:
        lines.append(
            f"{limit:6.1f} {rows[limit]['speedup']:8.3f} "
            f"{rows[limit]['expansion']:19.2f}"
        )
    emit_table("ablation_expansion_limits", lines)

    # Realized expansion is monotone in the limit and bounded by it.
    for lo, hi in zip(LIMITS, LIMITS[1:]):
        assert rows[lo]["expansion"] <= rows[hi]["expansion"] * 1.001
    for limit in LIMITS:
        assert rows[limit]["expansion"] <= limit + 0.05
    # Limit 1.0 means no duplication at all.
    assert rows[1.0]["expansion"] == 1.0
    # Duplication buys speedup over no duplication.
    assert rows[3.0]["speedup"] > rows[1.0]["speedup"]
