"""Supplementary studies: machine-width scaling and renaming-copy cost.

* **Width sweep** — the paper's motivation is *wide issue* processors:
  treegion speculation converts idle slots into progress.  Sweeping issue
  width 1..16 shows the treegion-over-SLR gap opening with width.
* **Copy accounting** — the paper excludes renaming copy ops from speedup
  ("Copy Ops added due to renaming were not used in computing speedup").
  This bench quantifies what that excludes: copies recorded per scheme as
  a fraction of scheduled ops.
"""

from repro.machine import universal_machine
from repro.schedule import ScheduleOptions
from repro.schedule.priorities import DEP_HEIGHT, GLOBAL_WEIGHT
from repro.evaluation import evaluate_program, slr_scheme, treegion_scheme

from benchmarks.conftest import emit_table, geometric_mean

WIDTHS = (1, 2, 4, 8, 16)
SWEEP_BENCHMARKS = ["compress", "go", "li", "vortex"]


def compute_width_sweep(lab):
    rows = {}
    for width in WIDTHS:
        machine = universal_machine(width)
        slr_speedups = []
        tree_speedups = []
        for bench in SWEEP_BENCHMARKS:
            program = lab.suite[bench]
            base = lab.baseline(bench)
            slr = evaluate_program(program, slr_scheme(), machine,
                                   ScheduleOptions(heuristic=DEP_HEIGHT))
            tree = evaluate_program(program, treegion_scheme(), machine,
                                    ScheduleOptions(heuristic=GLOBAL_WEIGHT))
            slr_speedups.append(base / slr.time)
            tree_speedups.append(base / tree.time)
        rows[width] = {
            "slr": geometric_mean(slr_speedups),
            "tree": geometric_mean(tree_speedups),
        }
    return rows


def test_width_sweep(benchmark, lab):
    rows = benchmark.pedantic(compute_width_sweep, args=(lab,), rounds=1,
                              iterations=1)
    lines = [
        "Machine width sweep (geomean of " + ", ".join(SWEEP_BENCHMARKS) + ")",
        f"{'width':>6s} {'slr':>7s} {'treegion':>9s} {'tree/slr':>9s}",
    ]
    for width in WIDTHS:
        ratio = rows[width]["tree"] / rows[width]["slr"]
        lines.append(
            f"{width:6d} {rows[width]['slr']:7.2f} "
            f"{rows[width]['tree']:9.2f} {ratio:9.3f}"
        )
    emit_table("width_sweep", lines)

    # Both schemes scale monotonically with width.
    for lo, hi in zip(WIDTHS, WIDTHS[1:]):
        assert rows[hi]["tree"] >= rows[lo]["tree"] * 0.995
        assert rows[hi]["slr"] >= rows[lo]["slr"] * 0.995
    # The treegion advantage is a wide-issue phenomenon: the tree/slr
    # ratio at width >= 8 exceeds the ratio at width 1.
    ratio_1 = rows[1]["tree"] / rows[1]["slr"]
    ratio_wide = rows[16]["tree"] / rows[16]["slr"]
    assert ratio_wide > ratio_1


def compute_copies(lab):
    rows = {}
    for bench in SWEEP_BENCHMARKS:
        tree = lab.evaluate(bench, scheme_name="treegion", machine_name="8U",
                            heuristic="global_weight")
        slr = lab.evaluate(bench, scheme_name="slr", machine_name="8U",
                           heuristic="dep_height")
        scheduled = sum(s.op_count for s in tree.schedules)
        rows[bench] = {
            "tree_copies": tree.total_copies,
            "slr_copies": slr.total_copies,
            "tree_frac": tree.total_copies / max(1, scheduled),
            "speculated": tree.total_speculated,
        }
    return rows


def test_renaming_copy_accounting(benchmark, lab):
    rows = benchmark.pedantic(compute_copies, args=(lab,), rounds=1,
                              iterations=1)
    lines = [
        "Renaming copy accounting (paper: copies excluded from speedup)",
        f"{'program':10s} {'tree copies':>12s} {'slr copies':>11s} "
        f"{'copies/op':>10s} {'speculated':>11s}",
    ]
    for bench in SWEEP_BENCHMARKS:
        row = rows[bench]
        lines.append(
            f"{bench:10s} {row['tree_copies']:12d} {row['slr_copies']:11d} "
            f"{row['tree_frac']:10.3f} {row['speculated']:11d}"
        )
    emit_table("renaming_copy_accounting", lines)

    total_tree = sum(rows[b]["tree_copies"] for b in SWEEP_BENCHMARKS)
    assert total_tree > 0, "multi-path scheduling must trigger renaming"
    for bench in SWEEP_BENCHMARKS:
        # Trees rename at least as much as linear regions (more paths).
        assert rows[bench]["tree_copies"] >= rows[bench]["slr_copies"], bench
        # The excluded cost is moderate, as the paper's accounting implies.
        assert rows[bench]["tree_frac"] < 0.35, bench
        assert rows[bench]["speculated"] > 0, bench
