"""Future-work study: treegion schedules vs dynamically scheduled cores.

Section 6 asks how treegion schedules fare "on dynamically scheduled
processor models".  Over the executable minic workloads this bench
compares, at equal issue width (4):

* static basic blocks (1U baseline and 4U);
* static treegions (global weight, simulated cycle counts);
* an out-of-order core (window 32) with the static model's serialized
  memory — isolating out-of-order issue itself;
* the same core with perfect memory disambiguation — dynamic hardware's
  full advantage;
* the dataflow limit (infinite width/window) as the oracle bound.

Expected shape: the OoO core beats static treegions (it schedules across
region and loop-iteration boundaries, which the paper explicitly leaves
to software pipelining), treegions recover a large part of that gap over
plain basic blocks, and on chain-bound code (fib) all machines converge
to the dataflow limit.
"""

from repro.interp import profile_program
from repro.machine import VLIW_4U, universal_machine
from repro.schedule import ScheduleOptions
from repro.evaluation import bb_scheme, treegion_scheme
from repro.vliw import simulate
from repro.dynamic import DynamicParams, collect_trace, simulate_trace
from repro.dynamic.ooo import dataflow_limit
from repro.workloads.minic_programs import (
    build_minic_program,
    minic_program_names,
)

from benchmarks.conftest import emit_table, geometric_mean


def compute_dynamic_comparison():
    rows = {}
    options = ScheduleOptions(heuristic="global_weight")
    for name in minic_program_names():
        program, args = build_minic_program(name)
        reference, trace = collect_trace(program, args)
        profile_program(program, inputs=[args])

        _res, bb1 = simulate(program, bb_scheme(), universal_machine(1),
                             args, options)
        result, tree4 = simulate(program, treegion_scheme(), VLIW_4U, args,
                                 options)
        assert result == reference

        ooo_serial = simulate_trace(
            trace, DynamicParams(issue_width=4, window=32,
                                 disambiguate_memory=False)
        )
        ooo = simulate_trace(trace, DynamicParams(issue_width=4, window=32))
        rows[name] = {
            "base": bb1.cycles,
            "tree4": bb1.cycles / tree4.cycles,
            "ooo_serial": bb1.cycles / ooo_serial.cycles,
            "ooo": bb1.cycles / ooo.cycles,
            "limit": bb1.cycles / dataflow_limit(trace),
        }
    return rows


def test_dynamic_vs_static(benchmark):
    rows = benchmark.pedantic(compute_dynamic_comparison, rounds=1,
                              iterations=1)

    names = list(rows)
    columns = ["tree4", "ooo_serial", "ooo", "limit"]
    lines = [
        "Dynamic vs static scheduling at 4-issue "
        "(speedup over 1-issue basic blocks; minic workloads)",
        f"{'program':13s} {'tree 4U':>8s} {'ooo-serial':>11s} "
        f"{'ooo-disamb':>11s} {'dataflow':>9s}",
    ]
    for name in names:
        row = rows[name]
        lines.append(
            f"{name:13s} {row['tree4']:8.2f} {row['ooo_serial']:11.2f} "
            f"{row['ooo']:11.2f} {row['limit']:9.2f}"
        )
    means = {c: geometric_mean(rows[n][c] for n in names) for c in columns}
    lines.append(
        f"{'geomean':13s} {means['tree4']:8.2f} {means['ooo_serial']:11.2f} "
        f"{means['ooo']:11.2f} {means['limit']:9.2f}"
    )
    emit_table("dynamic_vs_static", lines)

    for name in names:
        row = rows[name]
        # Everything respects the oracle bound.
        assert row["tree4"] <= row["limit"] * 1.001, name
        assert row["ooo"] <= row["limit"] * 1.001, name
        # Disambiguation never hurts.
        assert row["ooo"] >= row["ooo_serial"] * 0.999, name
        # Static treegions deliver real speedup over the baseline.
        assert row["tree4"] > 1.2, name
    # The dynamic core wins overall (it schedules across regions/loop
    # iterations) — the quantitative answer to the paper's question.
    assert means["ooo"] > means["tree4"]
    # fib is chain-bound: every machine is within 20% of the limit.
    assert rows["fib"]["ooo"] >= 0.8 * rows["fib"]["limit"]
