"""Figure 13: global-weight tail-duplicated treegions vs superblocks.

The paper's headline result: "For both machine models, the speedup of
treegion scheduling exceeds that of superblock scheduling by 15% with a
code expansion limit of 2.0 (actual code expansion 1.32), and by 20% with
a code expansion limit of 3.0 (actual code expansion 1.44)."

Shapes reproduced here: tail-duplicated treegions with dominator
parallelism beat superblocks on the 8-issue machine at both limits, with
the 3.0 limit at least as good as 2.0; on the narrower 4-issue machine the
advantage shrinks (our substrate saturates 4 slots sooner than SPECint95
did — see EXPERIMENTS.md for the quantified deviation).
"""

from benchmarks.conftest import emit_table, geometric_mean


def compute_figure13(lab, benchmarks):
    rows = {}
    for bench in benchmarks:
        rows[bench] = {}
        for machine in ("4U", "8U"):
            rows[bench][f"sb{machine}"] = lab.speedup(
                bench, scheme_name="superblock", machine_name=machine,
                heuristic="global_weight",
            )
            for limit in (2.0, 3.0):
                rows[bench][f"t{limit:g}_{machine}"] = lab.speedup(
                    bench, scheme_name="treegion-td", machine_name=machine,
                    heuristic="global_weight", dominator_parallelism=True,
                    td_limit=limit,
                )
    return rows


def test_figure13_tail_dup_vs_superblock(benchmark, lab, benchmarks):
    rows = benchmark.pedantic(
        compute_figure13, args=(lab, benchmarks), rounds=1, iterations=1
    )

    columns = ["sb4U", "t2_4U", "t3_4U", "sb8U", "t2_8U", "t3_8U"]
    lines = [
        "Figure 13: global-weight tail-duplicated treegions vs superblocks",
        "(speedup over 1-issue basic-block scheduling)",
        f"{'program':10s} " + " ".join(f"{c:>8s}" for c in columns),
    ]
    for bench in benchmarks:
        lines.append(
            f"{bench:10s} "
            + " ".join(f"{rows[bench][c]:8.2f}" for c in columns)
        )
    means = {c: geometric_mean(rows[b][c] for b in benchmarks)
             for c in columns}
    lines.append(
        f"{'geomean':10s} " + " ".join(f"{means[c]:8.2f}" for c in columns)
    )
    lines.append(
        f"8U advantage over superblocks: "
        f"tree(2.0) {100 * (means['t2_8U'] / means['sb8U'] - 1):+.1f}%  "
        f"tree(3.0) {100 * (means['t3_8U'] / means['sb8U'] - 1):+.1f}%  "
        f"(paper: +15% / +20%)"
    )
    emit_table("figure13_tail_dup_vs_superblock", lines)

    # The headline ordering on the wide machine.
    assert means["t2_8U"] > means["sb8U"] * 1.03
    assert means["t3_8U"] > means["sb8U"] * 1.03
    assert means["t3_8U"] >= means["t2_8U"] * 0.99
    # 4U: treegions stay competitive (within a few percent of superblocks).
    assert means["t2_4U"] >= means["sb4U"] * 0.97
    # Per-benchmark: the 8U treegion(3.0) wins or ties almost everywhere.
    wins = sum(rows[b]["t3_8U"] >= rows[b]["sb8U"] for b in benchmarks)
    assert wins >= len(benchmarks) - 2
