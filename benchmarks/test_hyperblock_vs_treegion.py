"""Future-work study: hyperblocks vs treegions (predication vs speculation).

Section 6: "The serialization of code using predication as in hyperblocks
is an alternative to using tail duplication to eliminate merge points.  We
also plan to compare the tradeoffs between hyperblocks and treegions
directly and to evaluate the merits of predication versus speculation for
scheduling."

This bench runs that comparison on the synthetic suite: hyperblocks
(if-conversion — every off-path op predicated, no code growth, no
renaming) against treegions without and with tail duplication
(speculation + renaming + duplication).  Expected trade-off, visible in
the rows: hyperblocks pay guard-chain serialization on the critical path
but avoid duplication entirely; speculative treegions start off-path work
immediately and win on wide machines once tail duplication removes the
merge boundaries.
"""

from repro.machine import PAPER_MACHINES
from repro.schedule import ScheduleOptions
from repro.evaluation import evaluate_program
from repro.evaluation.schemes import hyperblock_scheme

from benchmarks.conftest import emit_table, geometric_mean


def compute_comparison(lab, benchmarks):
    rows = {}
    options = ScheduleOptions(heuristic="global_weight")
    for bench in benchmarks:
        rows[bench] = {}
        for machine_name, machine in PAPER_MACHINES.items():
            base = lab.baseline(bench)
            hb = evaluate_program(lab.suite[bench], hyperblock_scheme(),
                                  machine, options)
            rows[bench][f"hb{machine_name}"] = base / hb.time
            rows[bench][f"tree{machine_name}"] = lab.speedup(
                bench, scheme_name="treegion", machine_name=machine_name,
                heuristic="global_weight",
            )
            rows[bench][f"td{machine_name}"] = lab.speedup(
                bench, scheme_name="treegion-td", machine_name=machine_name,
                heuristic="global_weight", dominator_parallelism=True,
                td_limit=3.0,
            )
    return rows


def test_hyperblock_vs_treegion(benchmark, lab, benchmarks):
    rows = benchmark.pedantic(
        compute_comparison, args=(lab, benchmarks), rounds=1, iterations=1
    )

    columns = ["hb4U", "tree4U", "td4U", "hb8U", "tree8U", "td8U"]
    lines = [
        "Hyperblocks (predication) vs treegions (speculation), global weight",
        f"{'program':10s} " + " ".join(f"{c:>8s}" for c in columns),
    ]
    for bench in benchmarks:
        lines.append(
            f"{bench:10s} "
            + " ".join(f"{rows[bench][c]:8.2f}" for c in columns)
        )
    means = {c: geometric_mean(rows[b][c] for b in benchmarks)
             for c in columns}
    lines.append(
        f"{'geomean':10s} " + " ".join(f"{means[c]:8.2f}" for c in columns)
    )
    emit_table("hyperblock_vs_treegion", lines)

    # Both techniques beat the 1-issue baseline comfortably.
    for column in columns:
        assert means[column] > 1.2, column
    # The paper's bet: speculation + tail duplication wins on the wide
    # machine (hyperblocks serialize the guard chain into the critical
    # path while duplication removes merges without predication cost).
    assert means["td8U"] > means["hb8U"]
    # Hyperblocks cost no code growth, making them competitive with plain
    # treegions — they must land in the same performance band.
    assert means["hb8U"] > means["tree8U"] * 0.8
