"""Performance benchmark for the evaluation engine.

Runs the paper's full 192-cell grid (8 benchmarks × {bb, treegion,
treegion-td(2.0)} × {4U, 8U} × 4 heuristics) three ways —

* per-cell serial (``evaluate_cell``): the analysis caches and hot-path
  fixes, but no cross-cell work sharing;
* engine serial (``jobs=1``): shared clone/formation/priority keys;
* engine parallel (``jobs=4``): the multiprocessing path;

— verifies all three produce bit-identical numbers, and writes the wall
times plus per-stage breakdown to ``BENCH_eval.json`` at the repo root.

The ``seed_serial_seconds`` reference was measured on this container at
the seed commit (before the engine, caches, and hot-path work) by
evaluating the same 192 cells through ``evaluate_program`` one at a
time.  Regenerate the snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_engine.py -s
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.evaluation.engine import default_grid, evaluate_cell, evaluate_grid
from repro.util.timing import StageTimer

from benchmarks.conftest import emit_table

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_eval.json"

#: Wall time of the per-cell serial sweep at the seed commit (same
#: container, same 192 cells, no caches / engine / hot-path fixes).
SEED_SERIAL_SECONDS = 38.63
SEED_GRID_CELLS = 192


def test_perf_engine_snapshot():
    grid = default_grid()
    assert len(grid) == SEED_GRID_CELLS

    t0 = time.perf_counter()
    percell = [evaluate_cell(cell) for cell in grid]
    t_percell = time.perf_counter() - t0

    timer = StageTimer()
    t0 = time.perf_counter()
    serial = evaluate_grid(grid, jobs=1, timer=timer)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = evaluate_grid(grid, jobs=4)
    t_parallel = time.perf_counter() - t0

    # Bit-identical across all three paths.
    for a, b, c in zip(percell, serial, parallel):
        assert a.time == b.time == c.time
        assert a.code_expansion == b.code_expansion == c.code_expansion
        assert a.schedule_lengths == b.schedule_lengths == c.schedule_lengths

    # The caches alone must beat the seed, and the engine must beat the
    # per-cell path (generous margins: CI wall time is noisy).
    assert t_percell < SEED_SERIAL_SECONDS, (
        f"cached per-cell sweep ({t_percell:.2f}s) slower than the seed "
        f"({SEED_SERIAL_SECONDS:.2f}s)"
    )
    assert t_serial < SEED_SERIAL_SECONDS / 1.5
    assert t_parallel < SEED_SERIAL_SECONDS / 1.5

    snapshot = {
        "grid_cells": len(grid),
        "seed_serial_seconds": SEED_SERIAL_SECONDS,
        "percell_cached_seconds": round(t_percell, 3),
        "engine_serial_seconds": round(t_serial, 3),
        "engine_jobs4_seconds": round(t_parallel, 3),
        "speedup_percell_vs_seed": round(SEED_SERIAL_SECONDS / t_percell, 2),
        "speedup_serial_vs_seed": round(SEED_SERIAL_SECONDS / t_serial, 2),
        "speedup_jobs4_vs_seed": round(SEED_SERIAL_SECONDS / t_parallel, 2),
        "stage_seconds": {
            name: round(seconds, 3)
            for name, seconds in sorted(timer.totals.items())
        },
        "stage_counts": dict(sorted(timer.counts.items())),
    }
    BENCH_FILE.write_text(json.dumps(snapshot, indent=2) + "\n")

    emit_table("perf_engine", [
        f"{'path':24s} {'seconds':>9s} {'vs seed':>9s}",
        f"{'seed per-cell serial':24s} {SEED_SERIAL_SECONDS:9.2f} {'1.00x':>9s}",
        f"{'per-cell (caches only)':24s} {t_percell:9.2f} "
        f"{SEED_SERIAL_SECONDS / t_percell:8.2f}x",
        f"{'engine jobs=1':24s} {t_serial:9.2f} "
        f"{SEED_SERIAL_SECONDS / t_serial:8.2f}x",
        f"{'engine jobs=4':24s} {t_parallel:9.2f} "
        f"{SEED_SERIAL_SECONDS / t_parallel:8.2f}x",
    ])
